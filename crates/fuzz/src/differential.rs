//! Driving one generated case through every registered backend and
//! cross-checking the results.
//!
//! The comparison policy generalizes the paper's validation story (§6:
//! "the correctness of the GPU implementation is retained by validating
//! it with the CPU output"):
//!
//! * the first backend in the matrix must be the serial CPU reference;
//! * every backend whose name starts with `cpu` must match the reference
//!   **bit-for-bit** (same interpreter core, different scheduling);
//! * device backends (`gles2-*`) must match within the storage
//!   tolerance, scaled relatively as in the app-level matrix.

use crate::gen::FuzzCase;
use brook_auto::{registered_backends, Arg, BackendSpec, BrookContext};

/// The backend matrix one case runs against, plus the comparison
/// tolerance for device backends.
pub struct Matrix {
    /// Context factories, reference first.
    pub specs: Vec<BackendSpec>,
    /// Relative tolerance for non-CPU backends.
    pub tolerance: f32,
}

impl Default for Matrix {
    /// All in-tree backends with the app-level storage tolerance.
    fn default() -> Self {
        Matrix {
            specs: registered_backends(),
            tolerance: 1e-3,
        }
    }
}

/// One backend's outputs for one case (one buffer per `out` stream).
#[derive(Debug, Clone)]
pub struct BackendOutput {
    /// Backend name from the spec.
    pub backend: &'static str,
    /// Output buffers in declaration order.
    pub outputs: Vec<Vec<f32>>,
}

/// A cross-backend disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The backend that disagreed with the CPU reference.
    pub backend: &'static str,
    /// Which `out` stream diverged.
    pub output_index: usize,
    /// Which element within it.
    pub element: usize,
    /// The CPU reference value.
    pub reference: f32,
    /// The diverging backend's value.
    pub actual: f32,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: output {} element {}: cpu {} vs {}",
            self.backend, self.output_index, self.element, self.reference, self.actual
        )
    }
}

/// Why a case failed.
#[derive(Debug, Clone)]
pub enum CaseFailure {
    /// A backend refused to compile or run a program every other backend
    /// accepted — itself a portability bug.
    Setup {
        /// Offending backend.
        backend: &'static str,
        /// Error rendering.
        message: String,
    },
    /// Backends disagreed on a result.
    Divergence(Divergence),
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseFailure::Setup { backend, message } => {
                write!(f, "{backend}: setup failed: {message}")
            }
            CaseFailure::Divergence(d) => write!(f, "divergence: {d}"),
        }
    }
}

/// Runs `case` on one backend and returns its output buffers.
fn run_on(spec: &BackendSpec, case: &FuzzCase) -> Result<Vec<Vec<f32>>, String> {
    let mut ctx: BrookContext = (spec.make)();
    let module = ctx.compile(&case.source).map_err(|e| format!("compile: {e}"))?;
    run_with_module(&mut ctx, &module, case)
}

/// Runs an already-compiled `case` in `ctx` (streams and launch only) —
/// shared by [`run_case`] and the concurrent campaign, where the module
/// arrives via a shared artifact cache instead of a fresh compile.
pub(crate) fn run_with_module(
    ctx: &mut BrookContext,
    module: &brook_auto::BrookModule,
    case: &FuzzCase,
) -> Result<Vec<Vec<f32>>, String> {
    let mut input_streams = Vec::new();
    for data in &case.inputs {
        let s = ctx
            .stream(&case.domain_shape)
            .map_err(|e| format!("input stream: {e}"))?;
        ctx.write(&s, data).map_err(|e| format!("write: {e}"))?;
        input_streams.push(s);
    }
    let gather_stream = match &case.gather {
        Some(g) => {
            let s = ctx.stream(&g.shape).map_err(|e| format!("gather stream: {e}"))?;
            ctx.write(&s, &g.data).map_err(|e| format!("gather write: {e}"))?;
            Some(s)
        }
        None => None,
    };
    let mut out_streams = Vec::new();
    for _ in 0..case.n_outputs {
        out_streams.push(
            ctx.stream(&case.domain_shape)
                .map_err(|e| format!("output stream: {e}"))?,
        );
    }
    // Canonical parameter order (see `FuzzCase` docs): inputs, gather,
    // scalars, outputs.
    let mut args: Vec<Arg<'_>> = Vec::new();
    for s in &input_streams {
        args.push(Arg::Stream(s));
    }
    if let Some(g) = &gather_stream {
        args.push(Arg::Stream(g));
    }
    for v in &case.scalars {
        args.push(Arg::Float(*v));
    }
    for o in &out_streams {
        args.push(Arg::Stream(o));
    }
    let kernel = case
        .program
        .kernels()
        .next()
        .ok_or("case has no kernel")?
        .name
        .clone();
    ctx.run(module, &kernel, &args).map_err(|e| format!("run: {e}"))?;
    let mut outputs = Vec::new();
    for o in &out_streams {
        outputs.push(ctx.read(o).map_err(|e| format!("read: {e}"))?);
    }
    Ok(outputs)
}

/// Runs a case across the whole matrix and cross-checks every backend
/// against the CPU reference.
///
/// # Errors
/// [`CaseFailure::Setup`] when a backend rejects what the others accept,
/// [`CaseFailure::Divergence`] on a result mismatch.
pub fn run_case(case: &FuzzCase, matrix: &Matrix) -> Result<Vec<BackendOutput>, CaseFailure> {
    assert!(
        matrix
            .specs
            .first()
            .map(|s| s.name)
            .is_some_and(|n| n.starts_with("cpu")),
        "the matrix must lead with a CPU reference (serial interpreter or AST oracle)"
    );
    let mut runs: Vec<BackendOutput> = Vec::new();
    for spec in &matrix.specs {
        let outputs = run_on(spec, case).map_err(|message| CaseFailure::Setup {
            backend: spec.name,
            message,
        })?;
        runs.push(BackendOutput {
            backend: spec.name,
            outputs,
        });
    }
    let reference = runs[0].clone();
    for run in &runs[1..] {
        if let Some(d) = compare(&reference, run, matrix.tolerance) {
            return Err(CaseFailure::Divergence(d));
        }
    }
    Ok(runs)
}

/// Runs a case on every backend *without* cross-checking, collecting
/// whatever outputs each backend produces (backends that error are
/// skipped). Used to assemble repro bundles after a divergence.
pub fn collect_backend_outputs(case: &FuzzCase, matrix: &Matrix) -> Vec<BackendOutput> {
    matrix
        .specs
        .iter()
        .filter_map(|spec| {
            run_on(spec, case).ok().map(|outputs| BackendOutput {
                backend: spec.name,
                outputs,
            })
        })
        .collect()
}

/// Compares one backend against the reference under the policy described
/// in the module docs; `None` means agreement.
///
/// Shape disagreements (missing output streams, truncated buffers) are
/// divergences too — a harness built to catch buggy backends must not
/// let a short buffer zip away the comparison. The reported element is
/// the first index present on only one side, with `NaN` standing in for
/// the missing value.
pub fn compare(reference: &BackendOutput, run: &BackendOutput, tol: f32) -> Option<Divergence> {
    let bitwise = run.backend.starts_with("cpu");
    if reference.outputs.len() != run.outputs.len() {
        return Some(Divergence {
            backend: run.backend,
            output_index: reference.outputs.len().min(run.outputs.len()),
            element: 0,
            reference: f32::NAN,
            actual: f32::NAN,
        });
    }
    for (oi, (r, a)) in reference.outputs.iter().zip(&run.outputs).enumerate() {
        if r.len() != a.len() {
            let cut = r.len().min(a.len());
            return Some(Divergence {
                backend: run.backend,
                output_index: oi,
                element: cut,
                reference: r.get(cut).copied().unwrap_or(f32::NAN),
                actual: a.get(cut).copied().unwrap_or(f32::NAN),
            });
        }
        for (ei, (rv, av)) in r.iter().zip(a).enumerate() {
            let agree = if bitwise {
                rv.to_bits() == av.to_bits()
            } else {
                let scale = 1.0f32.max(rv.abs());
                (rv - av).abs() <= tol * scale
            };
            if !agree {
                return Some(Divergence {
                    backend: run.backend,
                    output_index: oi,
                    element: ei,
                    reference: *rv,
                    actual: *av,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn simple_case_agrees_everywhere() {
        let case = gen_case(0xD1FF, 0, &GenConfig::default());
        let runs = run_case(&case, &Matrix::default()).unwrap_or_else(|f| {
            panic!("case failed: {f}\n{}", case.source);
        });
        assert_eq!(runs.len(), registered_backends().len());
        assert_eq!(runs[0].backend, "cpu");
        assert_eq!(runs[0].outputs.len(), case.n_outputs);
    }

    #[test]
    fn compare_detects_bit_flip_on_cpu_backend() {
        let reference = BackendOutput {
            backend: "cpu",
            outputs: vec![vec![1.0, 2.0]],
        };
        let mut other = reference.clone();
        other.backend = "cpu-parallel";
        other.outputs[0][1] = 2.0000002; // one ulp-ish off: must be caught
        let d = compare(&reference, &other, 1e-3).expect("bitwise policy");
        assert_eq!(d.element, 1);
    }

    #[test]
    fn compare_allows_tolerance_on_device_backend() {
        let reference = BackendOutput {
            backend: "cpu",
            outputs: vec![vec![1000.0]],
        };
        let mut gpu = reference.clone();
        gpu.backend = "gles2-packed";
        gpu.outputs[0][0] = 1000.5; // within 1e-3 relative
        assert!(compare(&reference, &gpu, 1e-3).is_none());
        gpu.outputs[0][0] = 1010.0; // outside
        assert!(compare(&reference, &gpu, 1e-3).is_some());
    }
}
