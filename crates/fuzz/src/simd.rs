//! Explicit-SIMD differential mode.
//!
//! The `std::arch` execution layer (`brook_ir::simd`) promises
//! **bitwise identity with the scalar closure bodies** — no FMA
//! contraction, preserved operand order, float-domain clamps proven
//! equal to the scalar integer clamps — and the vectorized reduce
//! path promises bitwise identity with the serial fold for every
//! *admitted* (reassociation-safe) combine. This mode attacks both
//! promises where vector instructions actually differ from scalar
//! code: NaN propagation in `min`/`max`/compares, `-0.0` sign
//! handling in blends, and subnormals. Every case runs with
//! special-float-biased input data ([`GenConfig::special_floats`]).
//!
//! Two comparison layers:
//!
//! * a widened all-CPU matrix (AST oracle, scalar IR, lane engine,
//!   Tier-2 forced scalar, forced SSE2, auto SIMD, parallel with and
//!   without SIMD) — bitwise everywhere, so a single flipped NaN
//!   payload or zero sign is a divergence;
//! * per-device pairs: each registered GL backend runs every case
//!   twice, `SimdMode::Off` vs `SimdMode::Auto`, compared bitwise —
//!   the toggle must be invisible on backends that never dispatch to
//!   the SIMD kernels at all.
//!
//! The campaign closes with the fixed reduce set: a combine the
//! analyzer proves reassociation-safe (admitted, vectorized,
//! bit-compared against the serial fold and the AST oracle) and
//! combines it must reject (`f32` sum, `min` of an unproven operand),
//! which still must agree bitwise through the serial scalar fallback
//! — proving the fallback runs, on special data.

use crate::differential::{run_case, run_with_module, CaseFailure, Matrix};
use crate::gen::{gen_case, gen_values, special_overlay, FuzzCase, GenConfig};
use brook_auto::{registered_backends, BackendSpec, BrookContext};
use brook_ir::simd::{detect, SimdLevel, SimdMode};

fn cpu_scalar_ir() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.lane_execution = false;
    ctx
}

fn cpu_lanes_only() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.tier_execution = false;
    ctx
}

fn cpu_simd_off() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.simd_mode = SimdMode::Off;
    ctx
}

fn cpu_simd_sse2() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.simd_mode = SimdMode::Sse2;
    ctx
}

fn cpu_parallel_simd_off() -> BrookContext {
    let mut ctx = BrookContext::cpu_parallel();
    ctx.simd_mode = SimdMode::Off;
    ctx
}

/// The all-CPU matrix: every engine tier with SIMD forced off, forced
/// to SSE2, and auto-detected, all compared bitwise against the AST
/// oracle. A forced level above the host's capability resolves down
/// (`compile` clamps to `detect()`), so the matrix is portable.
pub fn simd_matrix() -> Matrix {
    Matrix {
        specs: vec![
            BackendSpec {
                name: "cpu-ast",
                make: BrookContext::cpu_ast_oracle,
            },
            BackendSpec {
                name: "cpu-scalar",
                make: cpu_scalar_ir,
            },
            BackendSpec {
                name: "cpu-lanes",
                make: cpu_lanes_only,
            },
            BackendSpec {
                name: "cpu-simd-off",
                make: cpu_simd_off,
            },
            BackendSpec {
                name: "cpu-sse2",
                make: cpu_simd_sse2,
            },
            BackendSpec {
                name: "cpu",
                make: BrookContext::cpu,
            },
            BackendSpec {
                name: "cpu-parallel-simd-off",
                make: cpu_parallel_simd_off,
            },
            BackendSpec {
                name: "cpu-parallel",
                make: BrookContext::cpu_parallel,
            },
        ],
        tolerance: 0.0,
    }
}

/// Statistics of one SIMD differential campaign.
#[derive(Debug, Clone, Default)]
pub struct SimdStats {
    /// Cases that agreed bitwise across the CPU matrix and all device
    /// on/off pairs.
    pub cases: u32,
    /// Kernels whose Tier-2 compile recorded a non-scalar SIMD level.
    pub simd_kernels: u32,
    /// Kernels that stayed scalar (tier-rejected or scalar level).
    pub scalar_kernels: u32,
    /// Fixed reduce kernels admitted to the vectorized reduce.
    pub admitted_reduces: u32,
    /// Fixed reduce kernels the planner rejected (serial fallback
    /// exercised and bit-checked).
    pub rejected_reduces: u32,
    /// Total output elements cross-checked.
    pub elements_checked: u64,
}

/// A combine the analyzer can prove reassociation-safe: `clamp` bounds
/// the operand to `[0.5, 2.0]` (NaN-free and sign-definite), so the
/// lattice `min` has one well-defined bit pattern under any fold
/// order. Must be admitted whenever the host has any SIMD level.
pub const SIMD_REDUCE_ADMITTED: &str =
    "reduce void rmin(float a<>, reduce float r<>) { r = min(r, clamp(a, 0.5, 2.0)); }";

/// Combines the planner must reject: `f32` addition is never
/// reassociation-safe, and `min` of a raw stream element has no
/// NaN-free proof. Both still run — through the serial scalar fold —
/// and must agree bitwise across every CPU context.
pub const SIMD_REDUCE_REJECTED: &[&str] = &[
    "reduce void rsum(float a<>, reduce float r<>) { r = r + a; }",
    "reduce void rmin(float a<>, reduce float r<>) { r = min(r, a); }",
];

/// Compile-probes the Tier-2 SIMD decision on the auto context:
/// `(simd, scalar)` kernel counts from the recorded plan details.
fn probe_simd_plans(source: &str) -> Result<(u32, u32), String> {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(source).map_err(|e| format!("probe compile: {e}"))?;
    let mut simd = 0;
    let mut scalar = 0;
    for plan in &module.report.tier_plans {
        if plan.compiled && !plan.detail.contains("simd scalar") {
            simd += 1;
        } else {
            scalar += 1;
        }
    }
    Ok((simd, scalar))
}

/// Runs one case on every registered *device* backend twice —
/// `SimdMode::Off` vs `SimdMode::Auto` — and requires bit identity.
/// The SIMD layer lives under the CPU tier engine only; on a GL
/// backend the toggle must change nothing, not even a NaN payload
/// the packed storage canonicalized.
fn run_device_pairs(case: &FuzzCase) -> Result<u64, String> {
    let mut checked = 0u64;
    for spec in registered_backends() {
        if spec.name.starts_with("cpu") {
            continue;
        }
        let run = |mode: SimdMode| -> Result<Vec<Vec<f32>>, String> {
            let mut ctx = (spec.make)();
            ctx.simd_mode = mode;
            let module = ctx
                .compile(&case.source)
                .map_err(|e| format!("{}: compile: {e}", spec.name))?;
            run_with_module(&mut ctx, &module, case).map_err(|e| format!("{}: {e}", spec.name))
        };
        let off = run(SimdMode::Off)?;
        let auto = run(SimdMode::Auto)?;
        for (oi, (r, a)) in off.iter().zip(&auto).enumerate() {
            for (ei, (x, y)) in r.iter().zip(a).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "{}: SimdMode::Auto diverged from Off at output {oi} element {ei}: \
                         {x} vs {y}",
                        spec.name
                    ));
                }
            }
            checked += r.len() as u64;
        }
    }
    Ok(checked)
}

/// A named context factory of the reduce matrix.
type ReduceSpec = (&'static str, fn() -> BrookContext);

/// The reduce contexts: AST oracle, serial and parallel CPU with the
/// SIMD toggle off, forced SSE2, and auto.
fn reduce_contexts() -> Vec<ReduceSpec> {
    vec![
        ("cpu-ast", BrookContext::cpu_ast_oracle as fn() -> BrookContext),
        ("cpu-simd-off", cpu_simd_off),
        ("cpu-sse2", cpu_simd_sse2),
        ("cpu", BrookContext::cpu),
        ("cpu-parallel-simd-off", cpu_parallel_simd_off),
        ("cpu-parallel", BrookContext::cpu_parallel),
    ]
}

/// Runs one fixed reduce source over special-float-biased data on
/// every reduce context, requiring bitwise identical scalars; returns
/// whether the auto context admitted it to the vectorized reduce.
///
/// # Errors
/// Compile/run failures and fold divergences.
fn run_reduce_diff(source: &str, n: usize, data_seed: u64) -> Result<(bool, u64), String> {
    let mut data = gen_values(data_seed, n);
    special_overlay(data_seed, &mut data);
    let mut reference: Option<(&'static str, f32)> = None;
    let mut admitted = false;
    let mut checked = 0u64;
    for (name, make) in reduce_contexts() {
        let mut ctx = make();
        let module = ctx
            .compile(source)
            .map_err(|e| format!("{name}: compile: {e}\n{source}"))?;
        let kernel = module.kernels().first().cloned().ok_or("no kernel")?;
        if name == "cpu" {
            admitted = module
                .report
                .simd_reduces
                .iter()
                .any(|r| r.kernel == kernel && r.admitted);
        }
        let s = ctx.stream(&[n]).map_err(|e| format!("{name}: {e}"))?;
        ctx.write(&s, &data).map_err(|e| format!("{name}: {e}"))?;
        let v = ctx
            .reduce(&module, &kernel, &s)
            .map_err(|e| format!("{name}: reduce: {e}\n{source}"))?;
        match &reference {
            None => reference = Some((name, v)),
            Some((ref_name, r)) => {
                if r.to_bits() != v.to_bits() {
                    return Err(format!(
                        "{name} reduce diverged from {ref_name}: {r} vs {v}\n{source}"
                    ));
                }
                checked += n as u64;
            }
        }
    }
    Ok((admitted, checked))
}

/// Runs `cases` seeded kernels (special-float-biased data) through the
/// CPU SIMD matrix and the device on/off pairs, then the fixed reduce
/// set with its admission assertions.
///
/// # Errors
/// The first case failure, annotated with the case name, or an
/// admission regression in the reduce set.
pub fn run_simd_campaign(seed: u64, cases: u32, cfg: &GenConfig) -> Result<SimdStats, String> {
    let cfg = GenConfig {
        special_floats: true,
        ..cfg.clone()
    };
    let matrix = simd_matrix();
    let mut stats = SimdStats::default();
    for index in 0..cases {
        let case = gen_case(seed, index, &cfg);
        let (simd, scalar) = probe_simd_plans(&case.source)
            .map_err(|e| format!("case {} (seed {seed:#x}, index {index}): {e}", case.name))?;
        stats.simd_kernels += simd;
        stats.scalar_kernels += scalar;
        let runs = run_case(&case, &matrix).map_err(|f| {
            let detail = match &f {
                CaseFailure::Setup { backend, message } => format!("{backend}: {message}"),
                CaseFailure::Divergence(d) => d.to_string(),
            };
            format!(
                "case {} (seed {seed:#x}, index {index}): {detail}\n{}",
                case.name, case.source
            )
        })?;
        stats.elements_checked += runs
            .first()
            .map(|r| r.outputs.iter().map(|o| o.len() as u64).sum::<u64>())
            .unwrap_or(0);
        stats.elements_checked += run_device_pairs(&case)
            .map_err(|e| format!("case {} (seed {seed:#x}, index {index}): {e}", case.name))?;
        stats.cases += 1;
    }
    // The fixed reduce set: one provably-safe combine that must be
    // admitted (on hosts with a SIMD level), and the unsafe combines
    // that must fall back to the serial scalar fold.
    let n = 4 * brook_ir::lanes::LANES + 7;
    let (admitted, checked) = run_reduce_diff(SIMD_REDUCE_ADMITTED, n, seed ^ 0x51D0)?;
    if detect() != SimdLevel::Scalar && !admitted {
        return Err(format!(
            "planner refused the provably reassociation-safe reduce:\n{SIMD_REDUCE_ADMITTED}"
        ));
    }
    stats.admitted_reduces += u32::from(admitted);
    stats.elements_checked += checked;
    stats.cases += 1;
    for (i, source) in SIMD_REDUCE_REJECTED.iter().enumerate() {
        let (admitted, checked) = run_reduce_diff(source, n, seed ^ (0x2E1E + i as u64))?;
        if admitted {
            return Err(format!(
                "planner admitted a reassociation-unsafe reduce:\n{source}"
            ));
        }
        stats.rejected_reduces += 1;
        stats.elements_checked += checked;
        stats.cases += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_toggles_are_what_they_claim() {
        let m = simd_matrix();
        let names: Vec<_> = m.specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "cpu-ast",
                "cpu-scalar",
                "cpu-lanes",
                "cpu-simd-off",
                "cpu-sse2",
                "cpu",
                "cpu-parallel-simd-off",
                "cpu-parallel"
            ]
        );
        let ctx = (m.specs[3].make)();
        assert_eq!(ctx.simd_mode, SimdMode::Off);
        assert!(ctx.lane_execution && ctx.tier_execution);
        let ctx = (m.specs[5].make)();
        assert_eq!(ctx.simd_mode, SimdMode::Auto);
    }

    #[test]
    fn reduce_set_admission_decisions_hold() {
        let (admitted, _) =
            run_reduce_diff(SIMD_REDUCE_ADMITTED, 77, 0xDEC0).unwrap_or_else(|e| panic!("{e}"));
        if detect() != SimdLevel::Scalar {
            assert!(admitted, "safe combine must be admitted");
        }
        for source in SIMD_REDUCE_REJECTED {
            let (admitted, _) = run_reduce_diff(source, 77, 0xDEC1).unwrap_or_else(|e| panic!("{e}"));
            assert!(!admitted, "unsafe combine must be rejected:\n{source}");
        }
    }

    #[test]
    fn small_campaign_is_bit_exact() {
        let stats =
            run_simd_campaign(0x51D0_5EED, 6, &GenConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            stats.cases,
            6 + 1 + SIMD_REDUCE_REJECTED.len() as u32,
            "{stats:?}"
        );
        assert_eq!(stats.rejected_reduces, SIMD_REDUCE_REJECTED.len() as u32);
        assert!(stats.elements_checked > 0);
    }
}
