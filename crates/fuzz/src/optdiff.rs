//! Optimized-vs-unoptimized differential mode.
//!
//! The BrookIR pass pipeline (constant folding, algebraic
//! simplification, CSE, DCE) promises **bit-exactness**: an optimized
//! program must produce the same f32 bit patterns as the unoptimized
//! one on the CPU backends, and stay within storage tolerance on the
//! device. This module widens the differential matrix to assert that
//! promise on every generated kernel, against the strongest available
//! oracle — the legacy AST tree walker, which never touches the IR at
//! all:
//!
//! | spec          | engine                       | policy    |
//! |---------------|------------------------------|-----------|
//! | `cpu-ast`     | AST tree walker (oracle)     | reference |
//! | `cpu-noopt`   | flat IR, passes disabled     | bitwise   |
//! | `cpu`         | flat IR, full pipeline       | bitwise   |
//! | `cpu-parallel`| flat IR, full pipeline       | bitwise   |
//! | `gles2-*`     | GLSL generated from the IR   | tolerance |
//!
//! One diverging case therefore localizes the bug: `cpu-noopt` vs
//! `cpu-ast` is a lowering/interpreter fault, `cpu` vs `cpu-noopt` is a
//! pass-pipeline fault, `gles2-*` vs `cpu` is a shader-generation
//! fault.

use crate::differential::{run_case, BackendOutput, CaseFailure, Matrix};
use crate::gen::{gen_case, GenConfig};
use brook_auto::{registered_backends, BackendSpec, BrookContext};

fn cpu_noopt() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.ir_optimize = false;
    ctx
}

/// The widened matrix: AST oracle first, then the unoptimized IR
/// interpreter, then every registered (optimized) backend.
pub fn opt_matrix() -> Matrix {
    let mut specs = vec![
        BackendSpec {
            name: "cpu-ast",
            make: BrookContext::cpu_ast_oracle,
        },
        BackendSpec {
            name: "cpu-noopt",
            make: cpu_noopt,
        },
    ];
    specs.extend(registered_backends());
    Matrix {
        specs,
        tolerance: 1e-3,
    }
}

/// Statistics of one optimized-vs-unoptimized campaign.
#[derive(Debug, Clone, Default)]
pub struct OptDiffStats {
    /// Cases that ran and agreed across the whole matrix.
    pub cases: u32,
    /// Total output elements cross-checked.
    pub elements_checked: u64,
}

/// Runs `cases` seeded kernels through the widened matrix.
///
/// # Errors
/// The first case failure, annotated with the case name (the seed and
/// index regenerate it anywhere).
pub fn run_optdiff_campaign(seed: u64, cases: u32, cfg: &GenConfig) -> Result<OptDiffStats, String> {
    let matrix = opt_matrix();
    let mut stats = OptDiffStats::default();
    for index in 0..cases {
        let case = gen_case(seed, index, cfg);
        let runs: Vec<BackendOutput> = run_case(&case, &matrix).map_err(|f| {
            let detail = match &f {
                CaseFailure::Setup { backend, message } => format!("{backend}: {message}"),
                CaseFailure::Divergence(d) => d.to_string(),
            };
            format!(
                "case {} (seed {seed:#x}, index {index}): {detail}\n{}",
                case.name, case.source
            )
        })?;
        stats.cases += 1;
        stats.elements_checked += runs
            .first()
            .map(|r| r.outputs.iter().map(|o| o.len() as u64).sum::<u64>())
            .unwrap_or(0);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_leads_with_the_ast_oracle() {
        let m = opt_matrix();
        let names: Vec<_> = m.specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "cpu-ast",
                "cpu-noopt",
                "cpu",
                "cpu-parallel",
                "gles2-native",
                "gles2-packed"
            ]
        );
        // Both extra specs report the names the bitwise policy keys on.
        assert_eq!((m.specs[0].make)().backend_name(), "cpu-ast");
        assert_eq!((m.specs[1].make)().backend_name(), "cpu");
    }

    #[test]
    fn small_campaign_is_bit_exact() {
        let stats =
            run_optdiff_campaign(0x0917_0D1F, 8, &GenConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(stats.cases, 8);
        assert!(stats.elements_checked > 0);
    }
}
