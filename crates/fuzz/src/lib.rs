//! # brook-fuzz — generative differential fuzzing for the Brook Auto toolchain
//!
//! PR 1 hardened the paper's "one certified source, many substrates,
//! equal results" claim for the eleven fixed workloads; this crate turns
//! the differential matrix into a *generator*: thousands of random
//! well-typed Brook Auto kernels driven through the full pipeline —
//! front-end, certification gate, GLSL codegen — on **every** registered
//! backend, with results cross-checked against the serial CPU reference.
//!
//! The moving parts:
//!
//! * [`gen`] — seeded, deterministic AST-level generation
//!   ([`gen::gen_case`] stays inside the certifiable subset and keeps
//!   magnitudes bounded; [`gen::gen_noncompliant`] steps outside it by
//!   exactly one rule so the gate's rejection can be asserted);
//! * [`differential`] — runs one case across the backend matrix
//!   (`cpu` reference, `cpu-parallel` bit-exact, `gles2-*` within
//!   storage tolerance);
//! * [`shrink`] — minimizes a diverging case by statement removal,
//!   control-flow flattening, loop-bound and shape reduction, each
//!   candidate revalidated through the real front-end and gate;
//! * [`repro`] — writes a self-contained bundle (`.br` source, inputs,
//!   per-backend outputs, README) under `target/fuzz-repros/`;
//! * [`run_campaign`] — the whole loop, plus the front-end round-trip
//!   check (print → reparse → print must be a fixed point) on every
//!   generated program.
//!
//! Determinism: a campaign is a pure function of its [`FuzzConfig`]; CI
//! runs a fixed seed, and a failure report names the seed so the exact
//! case regenerates anywhere.
//!
//! ```
//! use brook_fuzz::{run_campaign, FuzzConfig};
//! let stats = run_campaign(&FuzzConfig {
//!     cases: 4,
//!     negative_cases: 4,
//!     ..FuzzConfig::default()
//! })
//! .expect("backends agree");
//! assert_eq!(stats.positive_cases, 4);
//! assert!(stats.rejected_by_rule.len() >= 1);
//! ```

pub mod absint;
pub mod chain;
pub mod concurrent;
pub mod differential;
pub mod faults;
pub mod gen;
pub mod lanes;
pub mod mutation;
pub mod optdiff;
pub mod repro;
pub mod shrink;
pub mod simd;
pub mod tier;

pub use absint::{run_absint_campaign, AbsintStats};
pub use chain::{gen_chain, run_chain_campaign, run_chain_case, ChainCase, ChainConfig, ChainStats};
pub use concurrent::{run_concurrent_campaign, ConcurrentStats};
pub use differential::{compare, run_case, BackendOutput, CaseFailure, Divergence, Matrix};
pub use faults::{run_faults_campaign, FaultCaseFailure, FaultsConfig, FaultsStats};
pub use gen::{gen_case, gen_noncompliant, FuzzCase, GenConfig};
pub use lanes::{lanes_matrix, run_lanes_campaign, LanesStats};
pub use mutation::SaboteurBackend;
pub use optdiff::{opt_matrix, run_optdiff_campaign, OptDiffStats};
pub use repro::{repro_root, write_repro};
pub use shrink::shrink;
pub use simd::{run_simd_campaign, simd_matrix, SimdStats};
pub use tier::{run_tier_campaign, tier_matrix, TierStats};

use brook_auto::BrookError;
use brook_cert::{certify, violates, CertConfig, RuleId};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A whole campaign's configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; every case derives deterministically from it.
    pub seed: u64,
    /// Number of in-subset differential cases.
    pub cases: u32,
    /// Number of deliberately non-compliant gate-check cases.
    pub negative_cases: u32,
    /// Generator tuning.
    pub gen: GenConfig,
    /// Relative tolerance for device backends.
    pub tolerance: f32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xB400_A070,
            cases: 256,
            negative_cases: 64,
            gen: GenConfig::default(),
            tolerance: 1e-3,
        }
    }
}

/// Campaign summary on success.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Differential cases generated, validated and cross-checked.
    pub positive_cases: u32,
    /// Non-compliant cases correctly rejected by the gate.
    pub negative_cases: u32,
    /// Gate rejections grouped by the violated rule.
    pub rejected_by_rule: BTreeMap<RuleId, u32>,
}

/// Why a campaign stopped.
#[derive(Debug)]
pub enum CampaignFailure {
    /// A backend diverged (or refused a case the others accepted). The
    /// embedded case is already minimized; `original` is the case as
    /// generated.
    CaseFailed {
        /// Minimized failing case.
        minimized: Box<FuzzCase>,
        /// The case as generated.
        original: Box<FuzzCase>,
        /// The failure observed on the minimized case.
        failure: CaseFailure,
        /// Repro bundle location, when writing it succeeded.
        repro: Option<PathBuf>,
    },
    /// A generated program failed the front-end round trip — a bug in
    /// the generator, printer, lexer or parser.
    RoundTrip {
        /// Offending case.
        case: Box<FuzzCase>,
        /// What went wrong.
        message: String,
    },
    /// A deliberately non-compliant program slipped through the gate.
    GateEscape {
        /// The program source.
        source: String,
        /// The rule that should have been violated.
        expected_rule: RuleId,
    },
    /// A deliberately non-compliant program failed the *front-end*
    /// instead of reaching the gate — a generator bug: negative cases
    /// must be well-typed so the certification engine is what rejects
    /// them.
    NegativeFrontEnd {
        /// The program source.
        source: String,
        /// The rule the case was built to violate.
        expected_rule: RuleId,
        /// The front-end error.
        message: String,
    },
}

impl std::fmt::Display for CampaignFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignFailure::CaseFailed {
                minimized,
                failure,
                repro,
                ..
            } => {
                write!(
                    f,
                    "case `{}` failed: {failure}\nminimized kernel:\n{}",
                    minimized.name, minimized.source
                )?;
                if let Some(p) = repro {
                    write!(f, "\nrepro bundle: {}", p.display())?;
                }
                Ok(())
            }
            CampaignFailure::RoundTrip { case, message } => {
                write!(
                    f,
                    "front-end round trip failed for `{}`: {message}\n{}",
                    case.name, case.source
                )
            }
            CampaignFailure::GateEscape {
                source,
                expected_rule,
            } => {
                write!(
                    f,
                    "gate escape: expected a {expected_rule} violation, got compliance:\n{source}"
                )
            }
            CampaignFailure::NegativeFrontEnd {
                source,
                expected_rule,
                message,
            } => {
                write!(
                    f,
                    "negative case (built to violate {expected_rule}) failed the front-end \
                     instead of the gate: {message}\n{source}"
                )
            }
        }
    }
}

/// Checks the front-end on one generated case: the canonical source must
/// reparse, re-print to the same string (printer fixed point), and
/// type-check.
fn check_roundtrip(case: &FuzzCase) -> Result<(), String> {
    let reparsed = brook_lang::parse(&case.source).map_err(|e| format!("reparse failed: {e}"))?;
    let printed = brook_lang::pretty::print_program(&reparsed);
    if printed != case.source {
        return Err("pretty-printer is not a fixed point over parse".into());
    }
    brook_lang::check(reparsed).map_err(|e| format!("type check failed: {e}"))?;
    Ok(())
}

/// Runs a full campaign on the default backend matrix.
///
/// # Errors
/// The first divergence (minimized, with a repro bundle), round-trip
/// failure or gate escape.
pub fn run_campaign(cfg: &FuzzConfig) -> Result<CampaignStats, CampaignFailure> {
    run_campaign_on(
        cfg,
        &Matrix {
            tolerance: cfg.tolerance,
            ..Matrix::default()
        },
    )
}

/// [`run_campaign`] against an explicit backend matrix — the hook the
/// mutation self-test uses to inject a sabotaged backend.
///
/// # Errors
/// As [`run_campaign`].
pub fn run_campaign_on(cfg: &FuzzConfig, matrix: &Matrix) -> Result<CampaignStats, CampaignFailure> {
    let mut stats = CampaignStats::default();
    let cert_cfg = CertConfig::default();

    for i in 0..cfg.cases {
        let case = gen_case(cfg.seed, i, &cfg.gen);
        if let Err(message) = check_roundtrip(&case) {
            return Err(CampaignFailure::RoundTrip {
                case: Box::new(case),
                message,
            });
        }
        if let Err(failure) = run_case(&case, matrix) {
            // Minimize while the failure reproduces, then bundle it.
            let minimized = shrink(&case, |cand| run_case(cand, matrix).is_err());
            let failure = run_case(&minimized, matrix).err().unwrap_or(failure);
            let outputs = differential::collect_backend_outputs(&minimized, matrix);
            let repro = write_repro(&minimized, &failure, &outputs, cfg.seed).ok();
            return Err(CampaignFailure::CaseFailed {
                minimized: Box::new(minimized),
                original: Box::new(case),
                failure,
                repro,
            });
        }
        stats.positive_cases += 1;
    }

    for i in 0..cfg.negative_cases {
        let (_, source, rule) = gen_noncompliant(cfg.seed, i, &cert_cfg);
        let checked = match brook_lang::parse_and_check(&source) {
            Ok(checked) => checked,
            Err(e) => {
                return Err(CampaignFailure::NegativeFrontEnd {
                    source,
                    expected_rule: rule,
                    message: e.to_string(),
                });
            }
        };
        let report = certify(&checked, &cert_cfg);
        if !violates(&report, rule) {
            return Err(CampaignFailure::GateEscape {
                source,
                expected_rule: rule,
            });
        }
        // The runtime gate must refuse it too.
        let mut ctx = brook_auto::BrookContext::cpu();
        match ctx.compile(&source) {
            Err(BrookError::Certification(_)) => {}
            other => {
                return Err(CampaignFailure::GateEscape {
                    source: format!(
                        "{source}\n(compile returned {:?} instead of a certification error)",
                        other.map(|_| "Ok")
                    ),
                    expected_rule: rule,
                });
            }
        }
        stats.negative_cases += 1;
        *stats.rejected_by_rule.entry(rule).or_insert(0) += 1;
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes() {
        let stats = run_campaign(&FuzzConfig {
            cases: 8,
            negative_cases: 8,
            ..FuzzConfig::default()
        })
        .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.positive_cases, 8);
        assert_eq!(stats.negative_cases, 8);
    }

    #[test]
    fn campaign_stats_cover_multiple_rules() {
        let stats = run_campaign(&FuzzConfig {
            cases: 0,
            negative_cases: 32,
            ..FuzzConfig::default()
        })
        .unwrap_or_else(|f| panic!("{f}"));
        assert!(
            stats.rejected_by_rule.len() >= 3,
            "expected variety, got {:?}",
            stats.rejected_by_rule
        );
    }
}
