//! Fault-injection campaigns: random seeded [`FaultPlan`]s over the
//! eleven paper applications on every registered backend, with the
//! recovery ladder armed — the faulted run must be **bit-exact** to the
//! fault-free run of the same backend, finish without hanging, and
//! attribute every injected fault in its resilience evidence.
//!
//! Determinism: a campaign is a pure function of its [`FaultsConfig`];
//! each case's plan seed is derived from the campaign seed, the app
//! name and the backend name, so a failure report pins the exact
//! schedule that broke recovery.
//!
//! Soundness of the bit-exact oracle per backend family:
//!
//! * `cpu` / `cpu-parallel`: all fault kinds including *persistent*
//!   device loss — the verified failover path re-executes on the serial
//!   CPU, which is bit-exact with both by construction, and the campaign
//!   additionally compares against the fault-free **serial CPU** oracle.
//! * `gles2-*`: persistent loss is excluded ([`FaultMix`]
//!   `allow_persistent_loss = false`), because failing over mid-app
//!   would splice CPU arithmetic into device-quantized intermediate
//!   state; every *recoverable-in-place* fault (transient loss, panics,
//!   corruption, latency, hangs) must still reproduce the device's own
//!   fault-free bits.

use brook_apps::{all_apps, PaperApp};
use brook_auto::{registered_backends, BrookContext, FaultMix, FaultPlan, ResiliencePolicy};
use std::collections::BTreeMap;

/// Fault-campaign configuration.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Campaign seed; every plan derives from it.
    pub seed: u64,
    /// Random fault plans drawn per (app, backend) cell.
    pub plans_per_cell: u32,
    /// Per-attempt watchdog for injected hangs (milliseconds). Keeps
    /// the whole campaign's worst case bounded: one hang costs at most
    /// this long.
    pub attempt_timeout_ms: u64,
    /// Application names to cover (empty = all eleven). The in-tree
    /// smoke test trims the matrix to cheap apps; CI runs it whole.
    pub apps: Vec<&'static str>,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            seed: 0xFA_017,
            plans_per_cell: 1,
            attempt_timeout_ms: 100,
            apps: Vec::new(),
        }
    }
}

/// Aggregated evidence of one fault campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultsStats {
    /// (app, backend, plan) cases executed to bit-exact completion.
    pub cases: u64,
    /// Faults actually injected (scheduled faults may miss, e.g. a
    /// corruption scheduled on a reduce launch).
    pub injected_faults: u64,
    /// Transient retries performed.
    pub retries: u64,
    /// Panics contained by the recovery shield.
    pub panics_contained: u64,
    /// Corruptions caught (and repaired) by redundant execution.
    pub corruptions_detected: u64,
    /// Verified failovers to the serial CPU backend.
    pub failovers: u64,
    /// Cases per backend name.
    pub per_backend: BTreeMap<String, u64>,
}

/// One campaign failure: the case that did not recover bit-exactly.
#[derive(Debug, Clone)]
pub struct FaultCaseFailure {
    /// Application name.
    pub app: &'static str,
    /// Backend name.
    pub backend: &'static str,
    /// The failing plan's seed (regenerates the schedule anywhere).
    pub plan_seed: u64,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for FaultCaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault campaign: app `{}` on `{}` under plan seed {:#x}: {}",
            self.app, self.backend, self.plan_seed, self.reason
        )
    }
}

/// The recovery policy every campaign context runs under.
fn campaign_policy(config: &FaultsConfig) -> ResiliencePolicy {
    ResiliencePolicy {
        max_retries: 8,
        attempt_timeout_ms: Some(config.attempt_timeout_ms),
        redundant_check: true,
        ..ResiliencePolicy::default()
    }
}

/// The fault mix a backend can recover from bit-exactly (see module
/// docs for why persistent loss is CPU-family-only).
fn mix_for(backend: &'static str) -> FaultMix {
    FaultMix {
        allow_persistent_loss: backend.starts_with("cpu"),
        max_latency_ms: 3,
        ..FaultMix::default()
    }
}

/// Bitwise view for exact comparison (distinguishes -0.0/0.0 and NaN
/// payloads — "bit-exact" means bit-exact).
fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn plan_seed(campaign_seed: u64, app: &str, backend: &str, round: u32) -> u64 {
    let mut h: u64 = campaign_seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in app.bytes().chain(backend.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ u64::from(round).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Runs one app once on a fresh context of the named backend with the
/// given plan (or fault-free when `None`), returning the output and the
/// number of ladder-routed launches.
fn run_once(
    app: &dyn PaperApp,
    backend: &'static str,
    policy: &ResiliencePolicy,
    plan: Option<FaultPlan>,
) -> Result<(Vec<f32>, brook_auto::ResilienceSummary), String> {
    let spec = registered_backends()
        .into_iter()
        .find(|b| b.name == backend)
        .ok_or_else(|| format!("unknown backend `{backend}`"))?;
    let mut ctx: BrookContext = (spec.make)();
    ctx.set_resilience(policy.clone())
        .map_err(|e| format!("install policy: {e}"))?;
    if let Some(plan) = plan {
        ctx.set_fault_plan(plan);
    }
    let out = app
        .run_gpu(&mut ctx, app.matrix_size(), 7)
        .map_err(|e| format!("run_gpu: {e}"))?;
    Ok((out, ctx.resilience_summary()))
}

/// Runs the full fault matrix: every app × every registered backend ×
/// `plans_per_cell` random plans. Bit-exactness is asserted against the
/// same backend's fault-free run, and for the CPU family additionally
/// against the fault-free serial CPU oracle.
///
/// # Errors
/// The first case whose recovery was not bit-exact (or errored).
pub fn run_faults_campaign(config: &FaultsConfig) -> Result<FaultsStats, Box<FaultCaseFailure>> {
    let mut stats = FaultsStats::default();
    let policy = campaign_policy(config);
    let backends: Vec<&'static str> = registered_backends().iter().map(|b| b.name).collect();
    let mut apps = all_apps();
    if !config.apps.is_empty() {
        apps.retain(|a| config.apps.contains(&a.name()));
    }
    for app in apps {
        // The serial CPU fault-free oracle for this app.
        let (cpu_baseline, _) = run_once(app.as_ref(), "cpu", &policy, None).map_err(|reason| {
            Box::new(FaultCaseFailure {
                app: app.name(),
                backend: "cpu",
                plan_seed: 0,
                reason,
            })
        })?;
        for &backend in &backends {
            let fail = |plan_seed: u64, reason: String| {
                Box::new(FaultCaseFailure {
                    app: app.name(),
                    backend,
                    plan_seed,
                    reason,
                })
            };
            let (baseline, summary) =
                run_once(app.as_ref(), backend, &policy, None).map_err(|r| fail(0, r))?;
            let launches = summary.launches;
            for round in 0..config.plans_per_cell {
                let seed = plan_seed(config.seed, app.name(), backend, round);
                let plan = FaultPlan::random(seed, launches, &mix_for(backend));
                let (out, summary) =
                    run_once(app.as_ref(), backend, &policy, Some(plan)).map_err(|r| fail(seed, r))?;
                if bits(&out) != bits(&baseline) {
                    return Err(fail(
                        seed,
                        format!(
                            "faulted output diverges from the fault-free {backend} run \
                             ({} elements)",
                            out.len()
                        ),
                    ));
                }
                if backend.starts_with("cpu") && bits(&out) != bits(&cpu_baseline) {
                    return Err(fail(
                        seed,
                        "CPU-family faulted output diverges from the serial CPU oracle".into(),
                    ));
                }
                if summary.deadline_misses != 0 {
                    return Err(fail(
                        seed,
                        format!("{} deadline miss(es) under recovery", summary.deadline_misses),
                    ));
                }
                stats.cases += 1;
                stats.injected_faults += summary.injected_faults;
                stats.retries += summary.retries;
                stats.panics_contained += summary.panics_caught;
                stats.corruptions_detected += summary.corruptions_detected;
                stats.failovers += summary.failovers;
                *stats.per_backend.entry(backend.to_string()).or_default() += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_seeds_are_distinct_per_cell() {
        let a = plan_seed(1, "sgemm", "cpu", 0);
        let b = plan_seed(1, "sgemm", "cpu-parallel", 0);
        let c = plan_seed(1, "spmv", "cpu", 0);
        let d = plan_seed(1, "sgemm", "cpu", 1);
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
        assert_eq!(a, plan_seed(1, "sgemm", "cpu", 0), "deterministic");
    }

    #[test]
    fn gles2_mix_never_allows_persistent_loss() {
        assert!(mix_for("cpu").allow_persistent_loss);
        assert!(mix_for("cpu-parallel").allow_persistent_loss);
        assert!(!mix_for("gles2-native").allow_persistent_loss);
        assert!(!mix_for("gles2-packed").allow_persistent_loss);
    }
}
