//! Chain-generator mode: random 2–5 kernel *pipelines*, checked
//! differentially between eager execution and the deferred fusing
//! stream-graph executor on every registered backend.
//!
//! The point of the mode is to attack the fusion planner: a fused chain
//! must be indistinguishable from the eager one in results (bit-exact on
//! the CPU interpreters — inlining a producer as a let-bound local
//! performs the same f32 operations in the same order — and within
//! storage tolerance on the device backends), while the plan accounting
//! must show the chain actually collapsed. Every generated chain is
//! fusable by construction (single-output elementwise stages, no
//! helpers, merged inputs within the default gate limits), so a planner
//! regression that silently stops fusing fails the campaign just as
//! loudly as one that miscompiles.
//!
//! Magnitudes are kept bounded the same way [`crate::gen`] does it, with
//! a per-stage clamp to ±100: chains compound magnitudes multiplicatively,
//! and non-finite intermediates would trip the packed-storage
//! canonicalization into false divergences.

use crate::differential::{compare, BackendOutput, Matrix};
use brook_auto::{Arg, BrookContext, GraphReport};
use brook_lang::ast::{BinOp, ParamKind, Type};
use brook_lang::build::AstBuilder;
use brook_lang::pretty::print_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chain-campaign tuning.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Minimum pipeline length.
    pub min_stages: usize,
    /// Maximum pipeline length.
    pub max_stages: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            min_stages: 2,
            max_stages: 5,
        }
    }
}

/// One generated pipeline: `stages` kernels where stage *i* reads stage
/// *i−1*'s output elementwise, plus optionally one fresh input and one
/// scalar of its own.
#[derive(Debug, Clone)]
pub struct ChainCase {
    /// Stable case name (`chain_<seed>_<index>`).
    pub name: String,
    /// One translation unit holding every stage kernel (`s0`, `s1`, …).
    pub source: String,
    /// Stage kernel names in pipeline order.
    pub kernels: Vec<String>,
    /// Domain shape shared by every elementwise stream in the chain.
    pub domain_shape: Vec<usize>,
    /// Stage 0's input buffer.
    pub initial: Vec<f32>,
    /// Per stage: the optional fresh elementwise input's buffer.
    pub extras: Vec<Option<Vec<f32>>>,
    /// Per stage: the optional scalar argument.
    pub scalars: Vec<Option<f32>>,
}

impl ChainCase {
    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.kernels.len()
    }
}

/// Deterministically generates case `index` of the campaign seeded with
/// `seed`.
pub fn gen_chain(seed: u64, index: u32, cfg: &ChainConfig) -> ChainCase {
    let mut rng = StdRng::seed_from_u64(seed ^ ((u64::from(index) << 32) | 0xC4A1));
    let n_stages = rng.gen_range(cfg.min_stages..cfg.max_stages + 1);
    let domain_shape: Vec<usize> = if rng.gen_range(0u32..3) == 0 {
        [[4usize, 9], [8, 8], [3, 17]][rng.gen_range(0usize..3)].to_vec()
    } else {
        vec![[33usize, 64, 100, 257][rng.gen_range(0usize..4)]]
    };
    let len: usize = domain_shape.iter().product();
    let data = |rng: &mut StdRng| -> Vec<f32> { (0..len).map(|_| rng.gen_range(-4.0f32..4.0)).collect() };

    let mut b = AstBuilder::new();
    let mut items = Vec::new();
    let mut kernels = Vec::new();
    let mut extras = Vec::new();
    let mut scalars = Vec::new();
    let initial = data(&mut rng);
    for i in 0..n_stages {
        let has_extra = rng.gen_range(0u32..3) == 0;
        let has_scalar = rng.gen_range(0u32..2) == 0;
        extras.push(has_extra.then(|| data(&mut rng)));
        scalars.push(has_scalar.then(|| rng.gen_range(-8i32..9) as f32 * 0.25));

        let mut env: Vec<&str> = vec!["a"];
        if has_extra {
            env.push("b");
        }
        if has_scalar {
            env.push("k");
        }
        // A bounded random expression over the environment.
        fn expr(b: &mut AstBuilder, rng: &mut StdRng, env: &[&str], depth: u32) -> brook_lang::ast::Expr {
            if depth == 0 || rng.gen_range(0u32..4) == 0 {
                return if rng.gen_range(0u32..3) == 0 {
                    b.float_lit(rng.gen_range(1i32..9) as f32 * 0.25)
                } else {
                    b.var(env[rng.gen_range(0..env.len())])
                };
            }
            match rng.gen_range(0u32..6) {
                0 => {
                    let l = expr(b, rng, env, depth - 1);
                    let r = expr(b, rng, env, depth - 1);
                    b.binary(BinOp::Add, l, r)
                }
                1 => {
                    let l = expr(b, rng, env, depth - 1);
                    let r = expr(b, rng, env, depth - 1);
                    b.binary(BinOp::Sub, l, r)
                }
                2 => {
                    let l = expr(b, rng, env, depth - 1);
                    let r = expr(b, rng, env, depth - 1);
                    b.binary(BinOp::Mul, l, r)
                }
                3 => {
                    let l = expr(b, rng, env, depth - 1);
                    let r = expr(b, rng, env, depth - 1);
                    b.call("min", vec![l, r])
                }
                4 => {
                    let l = expr(b, rng, env, depth - 1);
                    let r = expr(b, rng, env, depth - 1);
                    b.call("max", vec![l, r])
                }
                _ => {
                    let e = expr(b, rng, env, depth - 1);
                    b.call("abs", vec![e])
                }
            }
        }
        let e = expr(&mut b, &mut rng, &env, 3);
        // o = min(max(e, -100), 100): keeps chained magnitudes bounded.
        let lo_mag = b.float_lit(100.0);
        let lo = b.unary(brook_lang::ast::UnOp::Neg, lo_mag);
        let clamped_lo = b.call("max", vec![e, lo]);
        let hi = b.float_lit(100.0);
        let clamped = b.call("min", vec![clamped_lo, hi]);
        let o = b.var("o");
        let body = vec![b.assign(o, clamped)];
        let mut params = vec![b.param("a", Type::FLOAT, ParamKind::Stream)];
        if has_extra {
            params.push(b.param("b", Type::FLOAT, ParamKind::Stream));
        }
        if has_scalar {
            params.push(b.param("k", Type::FLOAT, ParamKind::Scalar));
        }
        params.push(b.param("o", Type::FLOAT, ParamKind::OutStream));
        let name = format!("s{i}");
        items.push(b.kernel(&name, params, body));
        kernels.push(name);
    }
    let program = b.program(items);
    ChainCase {
        name: format!("chain_{seed:x}_{index}"),
        source: print_program(&program),
        kernels,
        domain_shape,
        initial,
        extras,
        scalars,
    }
}

/// One backend's eager/fused verdict for a chain.
#[derive(Debug, Clone)]
pub struct ChainRun {
    /// Backend name.
    pub backend: &'static str,
    /// Final output after sequential eager execution.
    pub eager: Vec<f32>,
    /// Final output after deferred-fused execution.
    pub fused: Vec<f32>,
    /// The graph executor's plan accounting.
    pub report: GraphReport,
}

/// Why a chain case failed.
#[derive(Debug, Clone)]
pub enum ChainFailure {
    /// A backend refused to set up or run the chain.
    Setup {
        /// Offending backend.
        backend: &'static str,
        /// Eager or fused path.
        mode: &'static str,
        /// Error rendering.
        message: String,
    },
    /// Eager or fused output diverged from the eager CPU oracle.
    Divergence {
        /// Offending backend.
        backend: &'static str,
        /// Eager or fused path.
        mode: &'static str,
        /// Rendering of the first mismatch.
        message: String,
    },
    /// The planner failed to collapse a chain that is fusable by
    /// construction.
    NotFused {
        /// Offending backend.
        backend: &'static str,
        /// Streams actually elided.
        elided: usize,
        /// Streams that should have been elided (stages − 1).
        expected: usize,
    },
}

impl std::fmt::Display for ChainFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainFailure::Setup {
                backend,
                mode,
                message,
            } => {
                write!(f, "{backend} ({mode}): setup failed: {message}")
            }
            ChainFailure::Divergence {
                backend,
                mode,
                message,
            } => {
                write!(f, "{backend} ({mode}): diverged from eager cpu oracle: {message}")
            }
            ChainFailure::NotFused {
                backend,
                elided,
                expected,
            } => write!(
                f,
                "{backend}: planner elided {elided} of {expected} intermediates on a chain \
                 that is fusable by construction"
            ),
        }
    }
}

fn stage_args<'a>(
    case: &ChainCase,
    i: usize,
    prev: &'a brook_auto::Stream,
    extra: &'a Option<brook_auto::Stream>,
    out: &'a brook_auto::Stream,
) -> Vec<Arg<'a>> {
    let mut args: Vec<Arg<'a>> = vec![Arg::Stream(prev)];
    if let Some(e) = extra {
        args.push(Arg::Stream(e));
    }
    if let Some(k) = case.scalars[i] {
        args.push(Arg::Float(k));
    }
    args.push(Arg::Stream(out));
    args
}

/// Runs `case` eagerly (real intermediates, one launch per stage).
fn run_eager(ctx: &mut BrookContext, case: &ChainCase) -> Result<Vec<f32>, String> {
    let module = ctx.compile(&case.source).map_err(|e| format!("compile: {e}"))?;
    let mut prev = ctx.stream(&case.domain_shape).map_err(|e| e.to_string())?;
    ctx.write(&prev, &case.initial).map_err(|e| e.to_string())?;
    for i in 0..case.stages() {
        let extra = match &case.extras[i] {
            Some(data) => {
                let s = ctx.stream(&case.domain_shape).map_err(|e| e.to_string())?;
                ctx.write(&s, data).map_err(|e| e.to_string())?;
                Some(s)
            }
            None => None,
        };
        let out = ctx.stream(&case.domain_shape).map_err(|e| e.to_string())?;
        let args = stage_args(case, i, &prev, &extra, &out);
        ctx.run(&module, &case.kernels[i], &args)
            .map_err(|e| format!("stage {i}: {e}"))?;
        prev = out;
    }
    ctx.read(&prev).map_err(|e| e.to_string())
}

/// Runs `case` through the deferred graph executor (virtual
/// intermediates, fused plan).
fn run_fused(ctx: &mut BrookContext, case: &ChainCase) -> Result<(Vec<f32>, GraphReport), String> {
    let module = ctx.compile(&case.source).map_err(|e| format!("compile: {e}"))?;
    let first = ctx.stream(&case.domain_shape).map_err(|e| e.to_string())?;
    ctx.write(&first, &case.initial).map_err(|e| e.to_string())?;
    let mut extra_streams = Vec::new();
    for data in case.extras.iter() {
        extra_streams.push(match data {
            Some(d) => {
                let s = ctx.stream(&case.domain_shape).map_err(|e| e.to_string())?;
                ctx.write(&s, d).map_err(|e| e.to_string())?;
                Some(s)
            }
            None => None,
        });
    }
    let last = ctx.stream(&case.domain_shape).map_err(|e| e.to_string())?;
    let report = {
        let mut g = ctx.graph();
        let mut prev = first;
        for (i, extra) in extra_streams.iter().enumerate() {
            let out = if i + 1 == case.stages() {
                last
            } else {
                g.stream(&case.domain_shape).map_err(|e| e.to_string())?
            };
            let args = stage_args(case, i, &prev, extra, &out);
            g.run(&module, &case.kernels[i], &args)
                .map_err(|e| format!("record stage {i}: {e}"))?;
            prev = out;
        }
        g.execute().map_err(|e| format!("execute: {e}"))?
    };
    let out = ctx.read(&last).map_err(|e| e.to_string())?;
    Ok((out, report))
}

/// Runs one chain on the whole matrix, comparing both modes of every
/// backend against the eager CPU reference and requiring the planner to
/// have collapsed the chain.
///
/// # Errors
/// The first [`ChainFailure`] encountered.
pub fn run_chain_case(case: &ChainCase, matrix: &Matrix) -> Result<Vec<ChainRun>, ChainFailure> {
    assert_eq!(
        matrix.specs.first().map(|s| s.name),
        Some("cpu"),
        "the matrix must lead with the serial CPU reference"
    );
    let mut runs = Vec::new();
    for spec in &matrix.specs {
        let mut ctx = (spec.make)();
        let eager = run_eager(&mut ctx, case).map_err(|message| ChainFailure::Setup {
            backend: spec.name,
            mode: "eager",
            message,
        })?;
        let mut ctx = (spec.make)();
        let (fused, report) = run_fused(&mut ctx, case).map_err(|message| ChainFailure::Setup {
            backend: spec.name,
            mode: "fused",
            message,
        })?;
        runs.push(ChainRun {
            backend: spec.name,
            eager,
            fused,
            report,
        });
    }
    let oracle = BackendOutput {
        backend: "cpu",
        outputs: vec![runs[0].eager.clone()],
    };
    for run in &runs {
        for (mode, out) in [("eager", &run.eager), ("fused", &run.fused)] {
            let candidate = BackendOutput {
                backend: run.backend,
                outputs: vec![out.clone()],
            };
            if let Some(d) = compare(&oracle, &candidate, matrix.tolerance) {
                return Err(ChainFailure::Divergence {
                    backend: run.backend,
                    mode,
                    message: d.to_string(),
                });
            }
        }
        let expected = case.stages() - 1;
        if run.report.elided_streams != expected {
            return Err(ChainFailure::NotFused {
                backend: run.backend,
                elided: run.report.elided_streams,
                expected,
            });
        }
    }
    Ok(runs)
}

/// Chain-campaign summary.
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    /// Chains generated and verified.
    pub cases: u32,
    /// Total stages across all chains.
    pub stages: usize,
    /// Passes the fused plans actually executed.
    pub executed_passes: usize,
    /// Passes the eager plans would have cost.
    pub eager_passes: usize,
    /// Intermediate streams elided across the campaign.
    pub elided_streams: usize,
}

/// A failed chain campaign: the case and what went wrong.
#[derive(Debug)]
pub struct ChainCampaignFailure {
    /// The failing case (source, data, stage list).
    pub case: Box<ChainCase>,
    /// The observed failure.
    pub failure: ChainFailure,
}

impl std::fmt::Display for ChainCampaignFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "chain case {} failed: {}", self.case.name, self.failure)?;
        writeln!(f, "--- source ---")?;
        writeln!(f, "{}", self.case.source)
    }
}

/// Runs `cases` chains from `seed` across the default matrix.
///
/// # Errors
/// The first failing case, with its full source for triage.
pub fn run_chain_campaign(
    seed: u64,
    cases: u32,
    cfg: &ChainConfig,
) -> Result<ChainStats, Box<ChainCampaignFailure>> {
    let matrix = Matrix::default();
    let mut stats = ChainStats::default();
    for index in 0..cases {
        let case = gen_chain(seed, index, cfg);
        match run_chain_case(&case, &matrix) {
            Ok(runs) => {
                stats.cases += 1;
                stats.stages += case.stages();
                // Plan accounting is backend-independent; take the
                // reference run's.
                stats.executed_passes += runs[0].report.executed_passes;
                stats.eager_passes += runs[0].report.eager_passes;
                stats.elided_streams += runs[0].report.elided_streams;
            }
            Err(failure) => {
                return Err(Box::new(ChainCampaignFailure {
                    case: Box::new(case),
                    failure,
                }))
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_generation_is_deterministic() {
        let cfg = ChainConfig::default();
        for i in 0..8 {
            let a = gen_chain(0xC4A1, i, &cfg);
            let b = gen_chain(0xC4A1, i, &cfg);
            assert_eq!(a.source, b.source, "case {i}");
            assert_eq!(a.initial, b.initial, "case {i}");
            assert_eq!(a.scalars, b.scalars, "case {i}");
        }
    }

    #[test]
    fn generated_chains_stay_certifiable() {
        let cfg = ChainConfig::default();
        for i in 0..16 {
            let case = gen_chain(0x5EED, i, &cfg);
            let mut ctx = BrookContext::cpu();
            ctx.compile(&case.source)
                .unwrap_or_else(|e| panic!("case {i} must certify: {e}\n{}", case.source));
            assert!((2..=5).contains(&case.stages()));
        }
    }

    #[test]
    fn single_chain_case_runs_and_fuses() {
        let case = gen_chain(0xAB, 1, &ChainConfig::default());
        let runs = run_chain_case(&case, &Matrix::default())
            .unwrap_or_else(|f| panic!("chain failed: {f}\n{}", case.source));
        for run in &runs {
            assert_eq!(run.report.executed_passes, 1, "{}", run.backend);
        }
    }
}
