//! Lane-engine differential mode.
//!
//! The lane-vectorized executor (`brook_ir::lanes`) promises
//! **bit-exactness with the scalar IR interpreter by construction**:
//! the planner only admits kernels whose dynamic semantics resolve
//! statically, and faulting blocks re-run scalar. This module widens
//! the differential matrix to assert that promise on every generated
//! kernel, against the two engines that never touch lane slabs at all:
//!
//! | spec           | engine                                   | policy  |
//! |----------------|------------------------------------------|---------|
//! | `cpu-ast`      | AST tree walker (oracle)                 | reference |
//! | `cpu-scalar`   | scalar flat-IR interpreter (lanes off)   | bitwise |
//! | `cpu`          | lane engine (planner-admitted kernels)   | bitwise |
//! | `cpu-parallel` | lane engine, block-aligned worker chunks | bitwise |
//!
//! One diverging case localizes the bug: `cpu-scalar` vs `cpu-ast` is a
//! lowering/interpreter fault, `cpu` vs `cpu-scalar` is a lane-engine
//! fault, `cpu-parallel` vs `cpu` is a chunk-alignment fault.
//!
//! Every case is also compile-probed to record the planner's decision,
//! and the campaign runs a fixed set of certifiable kernels the planner
//! *rejects* (lane-divergent ternary arm types), proving the scalar
//! fallback path is actually exercised and bit-exact too.

use crate::differential::{run_case, BackendOutput, CaseFailure, Matrix};
use crate::gen::{gen_case, GenConfig};
use brook_auto::{Arg, BackendSpec, BrookContext};

fn cpu_scalar() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.lane_execution = false;
    ctx
}

/// The widened matrix: AST oracle, scalar IR interpreter, lane engine,
/// and the parallel backend's lane-aligned chunking — all CPU specs, so
/// the comparison policy is bitwise everywhere.
pub fn lanes_matrix() -> Matrix {
    Matrix {
        specs: vec![
            BackendSpec {
                name: "cpu-ast",
                make: BrookContext::cpu_ast_oracle,
            },
            BackendSpec {
                name: "cpu-scalar",
                make: cpu_scalar,
            },
            BackendSpec {
                name: "cpu",
                make: BrookContext::cpu,
            },
            BackendSpec {
                name: "cpu-parallel",
                make: BrookContext::cpu_parallel,
            },
        ],
        tolerance: 0.0,
    }
}

/// Statistics of one lane differential campaign.
#[derive(Debug, Clone, Default)]
pub struct LanesStats {
    /// Cases that ran and agreed bitwise across the whole matrix.
    pub cases: u32,
    /// Kernels the planner admitted to the lane engine.
    pub vectorized_kernels: u32,
    /// Kernels the planner rejected (scalar fallback exercised),
    /// including the fixed rejected set.
    pub fallback_kernels: u32,
    /// Total output elements cross-checked.
    pub elements_checked: u64,
}

/// Certifiable kernels the planner must *reject* — their ternary arms
/// carry lane-divergent runtime types (int vs float), which the scalar
/// interpreter resolves per element but a lane slab cannot represent.
/// They compile, certify, and must still agree bitwise across the
/// matrix through the scalar fallback.
const REJECTED_SOURCES: &[&str] = &[
    "kernel void mixed_arms(float a<>, out float o<>) {
        o = a > 2.0 ? 1 : a * 0.5;
    }",
    "kernel void mixed_arms_deep(float a<>, out float o<>) {
        float s = 0.0;
        int i;
        for (i = 0; i < 4; i++) { s += a > float(i) ? 1 : 0.25; }
        o = s;
    }",
];

/// Compile-probes one source on a lane-enabled CPU context and returns
/// `(vectorized, fallback)` kernel counts from the recorded lane plans.
///
/// # Errors
/// Compile failures.
fn probe_plans(source: &str) -> Result<(u32, u32), String> {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(source).map_err(|e| format!("probe compile: {e}"))?;
    let mut vectorized = 0;
    let mut fallback = 0;
    for plan in &module.report.lane_plans {
        if plan.vectorized {
            vectorized += 1;
        } else {
            fallback += 1;
        }
    }
    Ok((vectorized, fallback))
}

/// Runs one fixed source across the matrix with a deterministic ramp
/// input, requiring bitwise agreement with the AST oracle.
///
/// # Errors
/// Compile/run failures and divergences, rendered with the source.
fn run_fixed(source: &str, n: usize) -> Result<u64, String> {
    let input: Vec<f32> = (0..n).map(|i| (i as f32) * 0.73 - 3.0).collect();
    let mut reference: Option<(&'static str, Vec<f32>)> = None;
    let mut checked = 0u64;
    for spec in lanes_matrix().specs {
        let mut ctx = (spec.make)();
        let module = ctx
            .compile(source)
            .map_err(|e| format!("{}: compile: {e}\n{source}", spec.name))?;
        let kernel = module.kernels().first().cloned().ok_or("no kernel")?;
        let a = ctx.stream(&[n]).map_err(|e| format!("{}: {e}", spec.name))?;
        let o = ctx.stream(&[n]).map_err(|e| format!("{}: {e}", spec.name))?;
        ctx.write(&a, &input).map_err(|e| format!("{}: {e}", spec.name))?;
        ctx.run(&module, &kernel, &[Arg::Stream(&a), Arg::Stream(&o)])
            .map_err(|e| format!("{}: run: {e}\n{source}", spec.name))?;
        let out = ctx.read(&o).map_err(|e| format!("{}: {e}", spec.name))?;
        match &reference {
            None => reference = Some((spec.name, out)),
            Some((ref_name, r)) => {
                for (i, (x, y)) in r.iter().zip(&out).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        return Err(format!(
                            "{} diverged from {ref_name} at element {i}: {x} vs {y}\n{source}",
                            spec.name
                        ));
                    }
                }
                checked += out.len() as u64;
            }
        }
    }
    Ok(checked)
}

/// Runs `cases` seeded kernels through the lane matrix, plus the fixed
/// planner-rejected set.
///
/// # Errors
/// The first case failure, annotated with the case name (the seed and
/// index regenerate it anywhere).
pub fn run_lanes_campaign(seed: u64, cases: u32, cfg: &GenConfig) -> Result<LanesStats, String> {
    let matrix = lanes_matrix();
    let mut stats = LanesStats::default();
    for index in 0..cases {
        let case = gen_case(seed, index, cfg);
        let (vectorized, fallback) = probe_plans(&case.source)
            .map_err(|e| format!("case {} (seed {seed:#x}, index {index}): {e}", case.name))?;
        stats.vectorized_kernels += vectorized;
        stats.fallback_kernels += fallback;
        let runs: Vec<BackendOutput> = run_case(&case, &matrix).map_err(|f| {
            let detail = match &f {
                CaseFailure::Setup { backend, message } => format!("{backend}: {message}"),
                CaseFailure::Divergence(d) => d.to_string(),
            };
            format!(
                "case {} (seed {seed:#x}, index {index}): {detail}\n{}",
                case.name, case.source
            )
        })?;
        stats.cases += 1;
        stats.elements_checked += runs
            .first()
            .map(|r| r.outputs.iter().map(|o| o.len() as u64).sum::<u64>())
            .unwrap_or(0);
    }
    // The forced-fallback set: certifiable, planner-rejected, bit-exact
    // through the scalar path on every spec.
    for source in REJECTED_SOURCES {
        let (vectorized, fallback) = probe_plans(source)?;
        if vectorized != 0 || fallback == 0 {
            return Err(format!(
                "planner unexpectedly admitted a kernel built to be rejected:\n{source}"
            ));
        }
        stats.fallback_kernels += fallback;
        stats.elements_checked += run_fixed(source, 3 * brook_ir::lanes::LANES + 5)?;
        stats.cases += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_leads_with_the_ast_oracle() {
        let m = lanes_matrix();
        let names: Vec<_> = m.specs.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["cpu-ast", "cpu-scalar", "cpu", "cpu-parallel"]);
        // The scalar spec really is the lane-disabled flat interpreter.
        let ctx = (m.specs[1].make)();
        assert!(!ctx.lane_execution);
        assert_eq!(ctx.backend_name(), "cpu");
    }

    #[test]
    fn rejected_sources_certify_but_fall_back() {
        for source in REJECTED_SOURCES {
            let (v, f) = probe_plans(source).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(v, 0, "planner must reject:\n{source}");
            assert!(f >= 1);
        }
    }

    #[test]
    fn small_campaign_is_bit_exact() {
        let stats =
            run_lanes_campaign(0x1A9E_5EED, 8, &GenConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(stats.cases, 8 + REJECTED_SOURCES.len() as u32);
        assert!(stats.vectorized_kernels > 0, "{stats:?}");
        assert!(stats.fallback_kernels >= REJECTED_SOURCES.len() as u32);
        assert!(stats.elements_checked > 0);
    }
}
