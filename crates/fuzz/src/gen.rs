//! Seeded, deterministic generation of random *well-typed* Brook Auto
//! programs.
//!
//! The generator works at the AST level through
//! [`brook_lang::build::AstBuilder`], so every produced program is
//! correct by construction: parameters are declared before use, locals
//! are initialized before they are read, loop counters are unique, and
//! gather indices are integral (BA011). Certification limits are not
//! hard-coded — the generator queries [`brook_cert::CertPredicates`]
//! for the same limits the gate enforces, so the two cannot drift.
//!
//! Two regimes:
//!
//! * [`gen_case`] stays *inside* the certifiable subset and keeps every
//!   expression's magnitude statically bounded (no overflow to infinity,
//!   no NaN-producing operand ranges), because the packed RGBA8 storage
//!   path canonicalizes non-finite values and a differential comparison
//!   against the CPU reference would otherwise report false positives;
//! * [`gen_noncompliant`] steps *outside* the subset by exactly one rule
//!   and returns the [`RuleId`] the gate must reject it with.

use brook_cert::{CertConfig, CertPredicates, RuleId};
use brook_lang::ast::*;
use brook_lang::build::AstBuilder;
use brook_lang::pretty::print_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Magnitude ceiling for generated intermediate expressions; squared it
/// still sits far below `f32::MAX`, so no compliant case can overflow.
const MAX_MAGNITUDE: f64 = 1.0e12;

/// Tuning knobs of the generator. The defaults match the certifiable
/// subset with room to spare and keep the per-case execution cost small
/// enough for a 256-case smoke run on every backend.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum elementwise input streams (at least 1 is always present).
    pub max_elem_inputs: u32,
    /// Maximum scalar (uniform) parameters.
    pub max_scalars: u32,
    /// Maximum `out` streams (at least 1 is always present).
    pub max_outputs: u32,
    /// Maximum local-variable statements in the kernel body.
    pub max_locals: u32,
    /// Maximum expression tree depth.
    pub max_expr_depth: u32,
    /// Maximum trip count of a generated counted loop.
    pub max_loop_trips: i64,
    /// Whether gather parameters are generated.
    pub allow_gather: bool,
    /// Whether helper functions are generated.
    pub allow_helper: bool,
    /// Whether vector-typed locals (`float2`..`float4`) are generated.
    pub allow_vectors: bool,
    /// Bias input/gather data toward special floats (NaN, `-0.0`,
    /// subnormals). Only safe for campaigns whose comparisons are all
    /// bitwise or same-backend pairs — the packed device storage
    /// canonicalizes non-finite values, so a cross-backend tolerance
    /// comparison would report false positives.
    pub special_floats: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_elem_inputs: 3,
            max_scalars: 2,
            max_outputs: 2,
            max_locals: 5,
            max_expr_depth: 3,
            max_loop_trips: 8,
            allow_gather: true,
            allow_helper: true,
            allow_vectors: true,
            special_floats: false,
        }
    }
}

/// Backing data for a gather parameter.
#[derive(Debug, Clone)]
pub struct GatherData {
    /// Logical shape of the gather stream.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

/// One generated differential-test case: a program plus the seeded
/// inputs it runs on. The kernel's parameters are always declared in
/// canonical order — elementwise inputs `s0..`, the optional gather `t`,
/// scalars `k0..`, outputs `o0..` — which is what
/// [`crate::differential`] relies on when binding arguments.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Stable case name (`case_<seed>_<index>`), used for repro bundles.
    pub name: String,
    /// Canonical pretty-printed source (kept in sync with `program`).
    pub source: String,
    /// The generated syntax tree.
    pub program: Program,
    /// Output/input domain shape.
    pub domain_shape: Vec<usize>,
    /// One buffer per elementwise input stream.
    pub inputs: Vec<Vec<f32>>,
    /// Optional gather table.
    pub gather: Option<GatherData>,
    /// Scalar parameter values.
    pub scalars: Vec<f32>,
    /// Number of `out` streams.
    pub n_outputs: usize,
    /// Seed the input buffers were derived from (used by the shrinker to
    /// regenerate data for smaller shapes).
    pub data_seed: u64,
    /// Whether the special-float overlay was applied to the data (see
    /// [`GenConfig::special_floats`]); [`FuzzCase::refresh`] reapplies
    /// it so shrinking preserves the data distribution.
    pub special_floats: bool,
}

impl FuzzCase {
    /// Number of elements in the output domain.
    pub fn domain_len(&self) -> usize {
        self.domain_shape.iter().product()
    }

    /// Total statements in the kernel body (a shrinking metric).
    pub fn stmt_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_block,
                        else_block,
                        ..
                    } => 1 + count(then_block) + else_block.as_ref().map(count).unwrap_or(0),
                    Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                        1 + count(body)
                    }
                    Stmt::Block(inner) => count(inner),
                    _ => 1,
                })
                .sum()
        }
        self.program.kernels().map(|k| count(&k.body)).sum()
    }

    /// Re-derives `source` from `program` and regenerates the input
    /// buffers for the current shapes (after a shrinking edit).
    pub fn refresh(&mut self) {
        self.source = print_program(&self.program);
        let len = self.domain_len();
        for (i, buf) in self.inputs.iter_mut().enumerate() {
            *buf = gen_values(self.data_seed.wrapping_add(i as u64), len);
            if self.special_floats {
                special_overlay(self.data_seed.wrapping_add(i as u64), buf);
            }
        }
        if let Some(g) = &mut self.gather {
            let glen: usize = g.shape.iter().product();
            g.data = gen_values(self.data_seed ^ 0x67617468, glen);
            if self.special_floats {
                special_overlay(self.data_seed ^ 0x67617468, &mut g.data);
            }
        }
    }
}

/// Deterministic input data in the safe magnitude band `[-4, 4)`.
pub fn gen_values(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect()
}

/// The special values the SIMD campaign cares about: quiet NaN, both
/// signed zeros, subnormals on both sides, and the smallest normal —
/// the inputs where a vector instruction's edge-case semantics could
/// drift from the scalar loop (NaN propagation in `min`/`max`, `-0.0`
/// sign handling in compares and blends, subnormal flush behavior).
const SPECIAL_FLOATS: [f32; 8] = [
    f32::NAN,
    -0.0,
    0.0,
    f32::MIN_POSITIVE / 2.0,
    -f32::MIN_POSITIVE / 4.0,
    1.0e-39,
    -1.0e-39,
    f32::MIN_POSITIVE,
];

/// Overwrites ~1/4 of `buf` with [`SPECIAL_FLOATS`] picks, seeded —
/// the [`GenConfig::special_floats`] bias.
pub fn special_overlay(seed: u64, buf: &mut [f32]) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5BEC_1A15);
    for v in buf.iter_mut() {
        if rng.gen_range(0u32..4) == 0 {
            *v = SPECIAL_FLOATS[rng.gen_range(0..SPECIAL_FLOATS.len())];
        }
    }
}

// ---------------------------------------------------------------------------
// Expression generation with magnitude tracking.
// ---------------------------------------------------------------------------

/// A name the expression generator may reference, with a conservative
/// magnitude bound for overflow avoidance.
#[derive(Debug, Clone)]
struct Ref {
    name: String,
    mag: f64,
}

struct ExprGen<'a> {
    b: &'a mut AstBuilder,
    rng: &'a mut StdRng,
    /// Float-typed names in scope (streams, scalars, initialized locals).
    env: Vec<Ref>,
    /// Name of the helper function, if one was generated.
    helper: Option<(String, f64)>,
    /// Output-domain length (for `indexof` magnitude).
    domain_len: f64,
    /// First output name (the `indexof` anchor).
    indexof_anchor: String,
    /// Whether the output domain is 2-D (`indexof(..).y` meaningful).
    domain_2d: bool,
}

impl ExprGen<'_> {
    /// A float literal; negatives are built as `Neg(lit)` to match the
    /// parser's canonical tree (the lexer has no negative literals, so a
    /// raw negative `FloatLit` would break the print/reparse fixed point).
    fn flit(&mut self, v: f32) -> (Expr, f64) {
        let e = if v < 0.0 {
            let p = self.b.float_lit(-v);
            self.b.unary(UnOp::Neg, p)
        } else {
            self.b.float_lit(v)
        };
        (e, v.abs().max(1.0) as f64)
    }

    /// An int literal, negatives as `Neg(lit)` (same reason as [`flit`]).
    ///
    /// [`flit`]: ExprGen::flit
    fn ilit(&mut self, v: i64) -> Expr {
        if v < 0 {
            let p = self.b.int_lit(-v);
            self.b.unary(UnOp::Neg, p)
        } else {
            self.b.int_lit(v)
        }
    }

    /// A literal from the exactly-representable quarter grid in [-4, 4];
    /// the pretty-printer and lexer round-trip these without loss.
    fn literal(&mut self) -> (Expr, f64) {
        let v = self.rng.gen_range(-16i32..17) as f32 * 0.25;
        let (e, _) = self.flit(v);
        (e, 4.0)
    }

    fn leaf(&mut self) -> (Expr, f64) {
        let n_env = self.env.len();
        match self.rng.gen_range(0u32..10) {
            // Weighted toward in-scope names so inputs actually matter.
            0..=5 if n_env > 0 => {
                let r = &self.env[self.rng.gen_range(0..n_env)];
                let (name, mag) = (r.name.clone(), r.mag);
                (self.b.var(name), mag)
            }
            6 if !self.indexof_anchor.is_empty() => {
                // indexof(o0).x — the linear (or column) element index.
                let io = self.b.indexof(self.indexof_anchor.clone());
                let comp = if self.domain_2d && self.rng.gen_range(0u32..2) == 0 {
                    "y"
                } else {
                    "x"
                };
                (self.b.swizzle(io, comp), self.domain_len)
            }
            _ => self.literal(),
        }
    }

    /// Generates a float expression of at most `depth` levels along with
    /// a conservative magnitude bound.
    fn expr(&mut self, depth: u32) -> (Expr, f64) {
        if depth == 0 {
            return self.leaf();
        }
        match self.rng.gen_range(0u32..12) {
            0 | 1 => {
                let (l, lm) = self.expr(depth - 1);
                let (r, rm) = self.expr(depth - 1);
                (self.b.binary(BinOp::Add, l, r), lm + rm)
            }
            2 => {
                let (l, lm) = self.expr(depth - 1);
                let (r, rm) = self.expr(depth - 1);
                (self.b.binary(BinOp::Sub, l, r), lm + rm)
            }
            3 => {
                let (l, lm) = self.expr(depth - 1);
                let (r, rm) = self.expr(depth - 1);
                if lm * rm <= MAX_MAGNITUDE {
                    (self.b.binary(BinOp::Mul, l, r), lm * rm)
                } else {
                    (self.b.binary(BinOp::Sub, l, r), lm + rm)
                }
            }
            4 => {
                // Division with a guarded denominator: |d| + 1 >= 1, so
                // the quotient magnitude never exceeds the numerator's
                // and no backend can produce inf/NaN here.
                let (num, nm) = self.expr(depth - 1);
                let (den, _) = self.expr(depth - 1);
                let abs_den = self.b.call("abs", vec![den]);
                let one = self.b.float_lit(1.0);
                let guarded = self.b.binary(BinOp::Add, abs_den, one);
                (self.b.binary(BinOp::Div, num, guarded), nm)
            }
            5 => {
                let (e, m) = self.expr(depth - 1);
                (self.b.unary(UnOp::Neg, e), m)
            }
            6 => {
                let cond = self.condition(depth - 1);
                let (t, tm) = self.expr(depth - 1);
                let (f, fm) = self.expr(depth - 1);
                (self.b.ternary(cond, t, f), tm.max(fm))
            }
            7 | 8 => self.builtin_call(depth),
            9 => {
                if let Some((name, hm)) = self.helper.clone() {
                    let (arg, _) = self.expr(depth - 1);
                    // Helper arguments are clamped at the call site so the
                    // helper's own magnitude analysis stays valid.
                    let clamped = self.clamp4(arg);
                    (self.b.call(name, vec![clamped]), hm)
                } else {
                    self.leaf()
                }
            }
            _ => self.leaf(),
        }
    }

    /// `clamp(e, -4.0, 4.0)` — pins an arbitrary expression back into
    /// the leaf magnitude band.
    fn clamp4(&mut self, e: Expr) -> Expr {
        let (lo, _) = self.flit(-4.0);
        let hi = self.b.float_lit(4.0);
        self.b.call("clamp", vec![e, lo, hi])
    }

    fn builtin_call(&mut self, depth: u32) -> (Expr, f64) {
        match self.rng.gen_range(0u32..11) {
            0 => {
                let (e, m) = self.expr(depth - 1);
                (self.b.call("abs", vec![e]), m)
            }
            1 => {
                let (e, m) = self.expr(depth - 1);
                (self.b.call("floor", vec![e]), m + 1.0)
            }
            2 => {
                let (e, m) = self.expr(depth - 1);
                (self.b.call("ceil", vec![e]), m + 1.0)
            }
            3 => {
                let (e, _) = self.expr(depth - 1);
                (self.b.call("fract", vec![e]), 1.0)
            }
            4 => {
                let (e, _) = self.expr(depth - 1);
                (self.b.call("sin", vec![e]), 1.0)
            }
            5 => {
                let (e, _) = self.expr(depth - 1);
                (self.b.call("cos", vec![e]), 1.0)
            }
            6 => {
                // sqrt over a non-negative operand only.
                let (e, m) = self.expr(depth - 1);
                let a = self.b.call("abs", vec![e]);
                (self.b.call("sqrt", vec![a]), m.sqrt().max(1.0))
            }
            7 => {
                let (l, lm) = self.expr(depth - 1);
                let (r, rm) = self.expr(depth - 1);
                (self.b.call("min", vec![l, r]), lm.max(rm))
            }
            8 => {
                let (l, lm) = self.expr(depth - 1);
                let (r, rm) = self.expr(depth - 1);
                (self.b.call("max", vec![l, r]), lm.max(rm))
            }
            9 => {
                let (edge, _) = self.expr(depth - 1);
                let (x, _) = self.expr(depth - 1);
                (self.b.call("step", vec![edge, x]), 1.0)
            }
            _ => {
                let (a, am) = self.expr(depth - 1);
                let (b_, bm) = self.expr(depth - 1);
                let (t, _) = self.expr(depth - 1);
                let tf = self.b.call("fract", vec![t]);
                (self.b.call("lerp", vec![a, b_, tf]), am + bm)
            }
        }
    }

    /// A boolean expression for `if`/ternary conditions.
    fn condition(&mut self, depth: u32) -> Expr {
        let cmp = |g: &mut Self, depth: u32| {
            let op = match g.rng.gen_range(0u32..6) {
                0 => BinOp::Lt,
                1 => BinOp::Le,
                2 => BinOp::Gt,
                3 => BinOp::Ge,
                4 => BinOp::Eq,
                _ => BinOp::Ne,
            };
            let (l, _) = g.expr(depth);
            let (r, _) = g.expr(depth);
            g.b.binary(op, l, r)
        };
        match self.rng.gen_range(0u32..6) {
            0 if depth > 0 => {
                let l = cmp(self, depth - 1);
                let r = cmp(self, depth - 1);
                self.b.binary(BinOp::And, l, r)
            }
            1 if depth > 0 => {
                let l = cmp(self, depth - 1);
                let r = cmp(self, depth - 1);
                self.b.binary(BinOp::Or, l, r)
            }
            2 if depth > 0 => {
                let c = cmp(self, depth - 1);
                self.b.unary(UnOp::Not, c)
            }
            _ => cmp(self, depth),
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-case generation.
// ---------------------------------------------------------------------------

/// Generates one well-typed, certifiable, magnitude-safe case.
///
/// Determinism: the case is a pure function of `(seed, index)` and the
/// config — two runs with the same arguments produce identical sources
/// and identical input data.
pub fn gen_case(seed: u64, index: u32, cfg: &GenConfig) -> FuzzCase {
    let cert_cfg = CertConfig::default();
    let pred = CertPredicates::new(&cert_cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ ((index as u64) << 32 | 0xF022));
    let mut b = AstBuilder::new();

    // Parameter plan (canonical order: inputs, gather, scalars, outputs).
    let n_inputs = rng.gen_range(1..cfg.max_elem_inputs + 1) as usize;
    let use_gather = cfg.allow_gather && rng.gen_range(0u32..10) < 3;
    let gather_rank: u8 = if rng.gen_range(0u32..2) == 0 { 1 } else { 2 };
    let n_scalars = rng.gen_range(0..cfg.max_scalars + 1) as usize;
    let n_outputs = rng.gen_range(1..cfg.max_outputs + 1) as usize;
    assert!(
        pred.inputs_within_limit((n_inputs + usize::from(use_gather)) as u32),
        "generator exceeded the BA006 input limit"
    );
    assert!(
        pred.outputs_within_limit(n_outputs as u32),
        "generator exceeded the BA005 output limit"
    );

    // Shapes.
    let domain_shape: Vec<usize> = {
        let pool: [&[usize]; 10] = [
            &[1],
            &[3],
            &[4],
            &[7],
            &[16],
            &[33],
            &[2, 3],
            &[4, 4],
            &[3, 5],
            &[8, 8],
        ];
        pool[rng.gen_range(0..pool.len())].to_vec()
    };
    let gather_shape: Vec<usize> = if gather_rank == 1 {
        vec![[5usize, 10, 16][rng.gen_range(0usize..3)]]
    } else {
        [[3usize, 5], [4, 4], [2, 7]][rng.gen_range(0usize..3)].to_vec()
    };
    let domain_2d = domain_shape.len() == 2;

    // Optional helper function.
    let use_helper = cfg.allow_helper && rng.gen_range(0u32..4) == 0;
    let mut items = Vec::new();
    let mut helper = None;
    if use_helper {
        let mut hg = ExprGen {
            b: &mut b,
            rng: &mut rng,
            env: vec![Ref {
                name: "x".into(),
                mag: 4.0,
            }],
            helper: None,
            domain_len: 1.0,
            indexof_anchor: String::new(),
            domain_2d: false,
        };
        // No indexof inside helpers: the anchor stream is not in scope.
        let (body_expr, hm) = hg.expr(2);
        let ret = b.ret(Some(body_expr));
        items.push(b.function(
            "h0",
            Some(Type::FLOAT),
            vec![("x".into(), Type::FLOAT)],
            vec![ret],
        ));
        helper = Some(("h0".to_string(), hm));
    }

    // Parameters.
    let mut params = Vec::new();
    let mut env = Vec::new();
    for i in 0..n_inputs {
        let name = format!("s{i}");
        params.push(b.param(&name, Type::FLOAT, ParamKind::Stream));
        env.push(Ref { name, mag: 4.0 });
    }
    if use_gather {
        params.push(b.param("t", Type::FLOAT, ParamKind::Gather { rank: gather_rank }));
    }
    for i in 0..n_scalars {
        let name = format!("k{i}");
        params.push(b.param(&name, Type::FLOAT, ParamKind::Scalar));
        env.push(Ref { name, mag: 4.0 });
    }
    for i in 0..n_outputs {
        params.push(b.param(format!("o{i}"), Type::FLOAT, ParamKind::OutStream));
    }

    // Body: locals, then one assignment per output.
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut counter = 0usize; // fresh loop-variable names
    let n_locals = rng.gen_range(1..cfg.max_locals + 1) as usize;
    let domain_len: usize = domain_shape.iter().product();
    for j in 0..n_locals {
        let local = format!("v{j}");
        let form = rng.gen_range(0u32..10);
        // A kernel that declares a gather parameter must actually read
        // it (first local), and the read must survive DCE (output 0
        // consumes `v0` below) — otherwise most campaigns would test
        // the clamp/elision path only by accident.
        let form = if use_gather && j == 0 { 5 } else { form };
        let mut g = ExprGen {
            b: &mut b,
            rng: &mut rng,
            env: env.clone(),
            helper: helper.clone(),
            domain_len: domain_len as f64,
            indexof_anchor: "o0".into(),
            domain_2d,
        };
        match form {
            // Bounded accumulation loop (the BA003 shape).
            0 | 1 => {
                let trips = g.rng.gen_range(1..cfg.max_loop_trips + 1);
                assert!(
                    pred.loop_trips_within_limit(trips as u64),
                    "generator exceeded the BA003 trip limit"
                );
                let ivar = format!("i{counter}");
                counter += 1;
                // The loop counter participates as a float via int->float
                // coercion.
                g.env.push(Ref {
                    name: ivar.clone(),
                    mag: trips as f64,
                });
                let (body_e, bm) = g.expr(cfg.max_expr_depth - 1);
                let acc = g.b.var(local.clone());
                let add = g.b.assign_op(acc, AssignOp::AddAssign, body_e);
                let loop_stmt = g.b.counted_for(&ivar, 0, trips, vec![add]);
                let zero = b.float_lit(0.0);
                stmts.push(b.decl(&local, Type::FLOAT, Some(zero)));
                stmts.push(b.decl(&ivar, Type::INT, None));
                stmts.push(loop_stmt);
                env.push(Ref {
                    name: local,
                    mag: bm * trips as f64,
                });
            }
            // Conditional reassignment.
            2 | 3 => {
                let (init, im) = g.expr(cfg.max_expr_depth);
                let cond = g.condition(1);
                let (then_e, tm) = g.expr(cfg.max_expr_depth - 1);
                let with_else = g.rng.gen_range(0u32..2) == 0;
                let (else_stmts, em) = if with_else {
                    let (else_e, em) = g.expr(cfg.max_expr_depth - 1);
                    let tgt = g.b.var(local.clone());
                    (Some(vec![g.b.assign(tgt, else_e)]), em)
                } else {
                    (None, im)
                };
                let tgt = g.b.var(local.clone());
                let then_stmts = vec![g.b.assign(tgt, then_e)];
                let if_stmt = g.b.if_stmt(cond, then_stmts, else_stmts);
                stmts.push(b.decl(&local, Type::FLOAT, Some(init)));
                stmts.push(if_stmt);
                env.push(Ref {
                    name: local,
                    mag: im.max(tm).max(em),
                });
            }
            // Vector construct + reduce back to scalar.
            4 if cfg.allow_vectors => {
                let width = g.rng.gen_range(2u8..5);
                let mut comps = Vec::new();
                for _ in 0..width {
                    let (c, _) = g.expr(1);
                    comps.push(g.clamp4(c));
                }
                let wname = format!("w{j}");
                let ctor = g.b.call(format!("float{width}"), comps);
                let wvar = g.b.var(wname.clone());
                let wvar2 = g.b.var(wname.clone());
                let dot = g.b.call("dot", vec![wvar, wvar2]);
                let wx = g.b.var(wname.clone());
                let swiz = g.b.swizzle(wx, "x");
                let sum = g.b.binary(BinOp::Add, dot, swiz);
                stmts.push(b.decl(&wname, Type::float(width), Some(ctor)));
                stmts.push(b.decl(&local, Type::FLOAT, Some(sum)));
                // dot of clamped(±4) components: <= 4 * 16 + 4.
                env.push(Ref {
                    name: local,
                    mag: 4.0 * 16.0 + 4.0,
                });
            }
            // Gather read (boundary indices included on purpose: all
            // backends clamp to the edge, BA012).
            5 if use_gather => {
                let glen: i64 = gather_shape.iter().product::<usize>() as i64;
                // Constant indices stay non-negative: the absint pass
                // hard-rejects provably-negative gathers (BA013), so a
                // literal below zero would make the generated kernel
                // uncompilable by design rather than a backend diff.
                // Negative runtime indices still flow through the
                // `int(expr)` arm, where the analyzer cannot prove a
                // fault and every backend clamps (BA012).
                let index_expr = |g: &mut ExprGen<'_>, dim: i64| -> Expr {
                    match g.rng.gen_range(0u32..4) {
                        0 => {
                            // Biased toward the edges: 0, dim-1, and a
                            // couple past the end exercise the clamp /
                            // elision boundary most often.
                            let v = g.rng.gen_range(0..dim + 3);
                            let v = if g.rng.gen_range(0u32..2) == 0 {
                                [0, (dim - 1).max(0), dim][g.rng.gen_range(0usize..3)]
                            } else {
                                v
                            };
                            g.ilit(v)
                        }
                        1 => {
                            // Far out of range, clamped by every backend.
                            g.ilit(10000)
                        }
                        _ => {
                            // Anchor on a genuine runtime input (stream
                            // elements are unknown to the analyzer), so
                            // constant folding can never prove this index
                            // negative no matter what `e` folds to, while
                            // runtime values still go negative and hit the
                            // low-side clamp.
                            let (e, _) = g.expr(1);
                            let anchor = g.b.var(format!("s{}", g.rng.gen_range(0..n_inputs)));
                            let sum = g.b.binary(BinOp::Sub, anchor, e);
                            g.b.call("int", vec![sum])
                        }
                    }
                };
                let indices: Vec<Expr> = if gather_rank == 1 {
                    vec![index_expr(&mut g, glen)]
                } else {
                    gather_shape
                        .iter()
                        .map(|d| index_expr(&mut g, *d as i64))
                        .collect()
                };
                let base = g.b.var("t");
                let access = g.b.index(base, indices);
                stmts.push(b.decl(&local, Type::FLOAT, Some(access)));
                env.push(Ref {
                    name: local,
                    mag: 4.0,
                });
            }
            // Plain expression local.
            _ => {
                let (e, m) = g.expr(cfg.max_expr_depth);
                stmts.push(b.decl(&local, Type::FLOAT, Some(e)));
                env.push(Ref { name: local, mag: m });
            }
        }
    }

    for i in 0..n_outputs {
        let mut g = ExprGen {
            b: &mut b,
            rng: &mut rng,
            env: env.clone(),
            helper: helper.clone(),
            domain_len: domain_len as f64,
            indexof_anchor: "o0".into(),
            domain_2d,
        };
        let (e, _) = g.expr(cfg.max_expr_depth);
        // Keep the forced gather read (local `v0`, see the locals loop)
        // live through dead-code elimination.
        let e = if i == 0 && use_gather {
            let gv = g.b.var("v0");
            g.b.binary(BinOp::Add, e, gv)
        } else {
            e
        };
        let tgt = b.var(format!("o{i}"));
        stmts.push(b.assign(tgt, e));
    }

    items.push(b.kernel("fk", params, stmts));
    let program = b.program(items);
    let source = print_program(&program);

    // Seeded input data.
    let data_seed = seed ^ ((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let inputs: Vec<Vec<f32>> = (0..n_inputs)
        .map(|i| {
            let mut buf = gen_values(data_seed.wrapping_add(i as u64), domain_len);
            if cfg.special_floats {
                special_overlay(data_seed.wrapping_add(i as u64), &mut buf);
            }
            buf
        })
        .collect();
    let gather = use_gather.then(|| {
        let glen: usize = gather_shape.iter().product();
        let mut data = gen_values(data_seed ^ 0x67617468, glen);
        if cfg.special_floats {
            special_overlay(data_seed ^ 0x67617468, &mut data);
        }
        GatherData {
            shape: gather_shape.clone(),
            data,
        }
    });
    let scalars: Vec<f32> = {
        let mut srng = StdRng::seed_from_u64(data_seed ^ 0x7363616c);
        (0..n_scalars).map(|_| srng.gen_range(-4.0f32..4.0)).collect()
    };

    FuzzCase {
        name: format!("case_{seed:x}_{index}"),
        source,
        program,
        domain_shape,
        inputs,
        gather,
        scalars,
        n_outputs,
        data_seed,
        special_floats: cfg.special_floats,
    }
}

// ---------------------------------------------------------------------------
// Deliberately non-compliant generation.
// ---------------------------------------------------------------------------

/// Generates a program that violates exactly one certification rule and
/// returns the [`RuleId`] the gate must report. The structural choices
/// (how many outputs, how deep a call chain, how many loop trips) are
/// taken from [`CertPredicates`], so the cases track the gate's
/// configured limits instead of hard-coding them.
pub fn gen_noncompliant(seed: u64, index: u32, cert_cfg: &CertConfig) -> (Program, String, RuleId) {
    let pred = CertPredicates::new(cert_cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ ((index as u64) << 32 | 0xBAD));
    let mut b = AstBuilder::new();
    let variant = rng.gen_range(0u32..7);
    let (items, rule) = match variant {
        // BA003: structurally unbounded loop.
        0 => {
            let a = b.var("s0");
            let zero = b.float_lit(0.0);
            let svar = b.var("v0");
            let cond = b.binary(BinOp::Lt, svar, a);
            let acc = b.var("v0");
            let one = b.float_lit(1.0);
            let add = b.assign_op(acc, AssignOp::AddAssign, one);
            let while_stmt = b.while_loop(cond, vec![add]);
            let o = b.var("o0");
            let v = b.var("v0");
            let body = vec![b.decl("v0", Type::FLOAT, Some(zero)), while_stmt, b.assign(o, v)];
            let k = b.kernel(
                "bad",
                vec![
                    b.param("s0", Type::FLOAT, ParamKind::Stream),
                    b.param("o0", Type::FLOAT, ParamKind::OutStream),
                ],
                body,
            );
            (vec![k], RuleId::BoundedLoops)
        }
        // BA003: loop bound not a compile-time constant.
        1 => {
            let zero = b.float_lit(0.0);
            let k0 = b.var("k0");
            let bound = b.call("int", vec![k0]);
            let ivar = b.var("i");
            let cond = b.binary(BinOp::Lt, ivar, bound);
            let init_tgt = b.var("i");
            let init_v = b.int_lit(0);
            let init = b.assign(init_tgt, init_v);
            let step_tgt = b.var("i");
            let step_v = b.int_lit(1);
            let step = b.assign_op(step_tgt, AssignOp::AddAssign, step_v);
            let acc = b.var("v0");
            let s0 = b.var("s0");
            let add = b.assign_op(acc, AssignOp::AddAssign, s0);
            let loop_stmt = b.for_loop(Some(init), Some(cond), Some(step), vec![add]);
            let o = b.var("o0");
            let v = b.var("v0");
            let body = vec![
                b.decl("v0", Type::FLOAT, Some(zero)),
                b.decl("i", Type::INT, None),
                loop_stmt,
                b.assign(o, v),
            ];
            let k = b.kernel(
                "bad",
                vec![
                    b.param("s0", Type::FLOAT, ParamKind::Stream),
                    b.param("k0", Type::FLOAT, ParamKind::Scalar),
                    b.param("o0", Type::FLOAT, ParamKind::OutStream),
                ],
                body,
            );
            (vec![k], RuleId::BoundedLoops)
        }
        // BA003: trip count over the configured limit.
        2 => {
            let trips = pred.min_violating_trips() as i64;
            let zero = b.float_lit(0.0);
            let acc = b.var("v0");
            let s0 = b.var("s0");
            let add = b.assign_op(acc, AssignOp::AddAssign, s0);
            let loop_stmt = b.counted_for("i", 0, trips, vec![add]);
            let o = b.var("o0");
            let v = b.var("v0");
            let body = vec![
                b.decl("v0", Type::FLOAT, Some(zero)),
                b.decl("i", Type::INT, None),
                loop_stmt,
                b.assign(o, v),
            ];
            let k = b.kernel(
                "bad",
                vec![
                    b.param("s0", Type::FLOAT, ParamKind::Stream),
                    b.param("o0", Type::FLOAT, ParamKind::OutStream),
                ],
                body,
            );
            (vec![k], RuleId::BoundedLoops)
        }
        // BA005: one output too many.
        3 => {
            let n = pred.min_violating_outputs() as usize;
            let mut params = vec![b.param("s0", Type::FLOAT, ParamKind::Stream)];
            let mut body = Vec::new();
            for i in 0..n {
                params.push(b.param(format!("o{i}"), Type::FLOAT, ParamKind::OutStream));
                let tgt = b.var(format!("o{i}"));
                let src = b.var("s0");
                body.push(b.assign(tgt, src));
            }
            let k = b.kernel("bad", params, body);
            (vec![k], RuleId::OutputLimit)
        }
        // BA006: one input too many.
        4 => {
            let n = pred.min_violating_inputs() as usize;
            let mut params = Vec::new();
            let mut sum = b.float_lit(0.0);
            for i in 0..n {
                params.push(b.param(format!("s{i}"), Type::FLOAT, ParamKind::Stream));
                let v = b.var(format!("s{i}"));
                sum = b.binary(BinOp::Add, sum, v);
            }
            params.push(b.param("o0", Type::FLOAT, ParamKind::OutStream));
            let tgt = b.var("o0");
            let body = vec![b.assign(tgt, sum)];
            let k = b.kernel("bad", params, body);
            (vec![k], RuleId::InputLimit)
        }
        // BA009: helper chain one level too deep.
        5 => {
            let depth = pred.min_violating_call_depth() as usize;
            let mut items = Vec::new();
            for lvl in 0..depth {
                let inner = if lvl == 0 {
                    b.var("x")
                } else {
                    let arg = b.var("x");
                    b.call(format!("h{}", lvl - 1), vec![arg])
                };
                let ret = b.ret(Some(inner));
                items.push(b.function(
                    format!("h{lvl}"),
                    Some(Type::FLOAT),
                    vec![("x".into(), Type::FLOAT)],
                    vec![ret],
                ));
            }
            let arg = b.var("s0");
            let call = b.call(format!("h{}", depth - 1), vec![arg]);
            let tgt = b.var("o0");
            let body = vec![b.assign(tgt, call)];
            let k = b.kernel(
                "bad",
                vec![
                    b.param("s0", Type::FLOAT, ParamKind::Stream),
                    b.param("o0", Type::FLOAT, ParamKind::OutStream),
                ],
                body,
            );
            items.push(k);
            (items, RuleId::StackDepthBound)
        }
        // BA004: recursion through a helper.
        _ => {
            let arg = b.var("x");
            let rec = b.call("r0", vec![arg]);
            let ret = b.ret(Some(rec));
            let f = b.function(
                "r0",
                Some(Type::FLOAT),
                vec![("x".into(), Type::FLOAT)],
                vec![ret],
            );
            let arg2 = b.var("s0");
            let call = b.call("r0", vec![arg2]);
            let tgt = b.var("o0");
            let body = vec![b.assign(tgt, call)];
            let k = b.kernel(
                "bad",
                vec![
                    b.param("s0", Type::FLOAT, ParamKind::Stream),
                    b.param("o0", Type::FLOAT, ParamKind::OutStream),
                ],
                body,
            );
            (vec![f, k], RuleId::NoRecursion)
        }
    };
    let program = b.program(items);
    let source = print_program(&program);
    (program, source, rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_cert::{certify, violates};
    use brook_lang::parse_and_check;

    #[test]
    fn generated_cases_parse_check_and_certify() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let case = gen_case(42, i, &cfg);
            let checked = parse_and_check(&case.source)
                .unwrap_or_else(|e| panic!("case {i} invalid: {e}\n{}", case.source));
            let report = certify(&checked, &CertConfig::default());
            assert!(
                report.is_compliant(),
                "case {i} not certifiable:\n{}",
                case.source
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for i in 0..10 {
            let a = gen_case(7, i, &cfg);
            let b = gen_case(7, i, &cfg);
            assert_eq!(a.source, b.source);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.scalars, b.scalars);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = gen_case(1, 0, &cfg);
        let b = gen_case(2, 0, &cfg);
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn pretty_print_is_fixed_point_on_generated_cases() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let case = gen_case(99, i, &cfg);
            let reparsed = brook_lang::parse(&case.source).expect("reparse");
            let printed = brook_lang::pretty::print_program(&reparsed);
            assert_eq!(case.source, printed, "case {i} not a fixed point");
        }
    }

    #[test]
    fn noncompliant_cases_are_rejected_for_the_expected_rule() {
        let cert_cfg = CertConfig::default();
        for i in 0..30 {
            let (_, source, rule) = gen_noncompliant(13, i, &cert_cfg);
            let checked = parse_and_check(&source)
                .unwrap_or_else(|e| panic!("negative case {i} must still type-check: {e}\n{source}"));
            let report = certify(&checked, &cert_cfg);
            assert!(
                violates(&report, rule),
                "negative case {i} expected {rule} violation:\n{source}"
            );
        }
    }

    #[test]
    fn stmt_count_counts_nested_statements() {
        let cfg = GenConfig::default();
        let case = gen_case(5, 3, &cfg);
        assert!(case.stmt_count() >= 2);
    }
}
