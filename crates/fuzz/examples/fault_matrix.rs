//! CI entry point for the full fault matrix: random seeded FaultPlans
//! over all eleven paper apps × every registered backend, recovery
//! asserted bit-exact (see `brook_fuzz::faults`). Exits nonzero on the
//! first case that fails to recover; the printed failure pins the plan
//! seed. Run under a hard job timeout — "zero hangs" is part of the
//! contract being checked.

fn main() {
    let config = brook_fuzz::FaultsConfig::default();
    let started = std::time::Instant::now();
    let stats = brook_fuzz::run_faults_campaign(&config).unwrap_or_else(|f| {
        eprintln!("{f}");
        std::process::exit(1);
    });
    assert!(stats.injected_faults > 0, "campaign must inject faults");
    assert_eq!(stats.per_backend.len(), 4, "all four backends covered");
    println!(
        "fault matrix: {} cases, {} faults injected, {} retries, {} panics contained, \
         {} corruptions caught, {} verified failovers — all bit-exact in {:.1?}",
        stats.cases,
        stats.injected_faults,
        stats.retries,
        stats.panics_contained,
        stats.corruptions_detected,
        stats.failovers,
        started.elapsed(),
    );
}
