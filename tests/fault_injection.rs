//! Fault-injection integration tests: the certification argument of the
//! paper (§2 rules d and e) is that faults in a GPU task must neither
//! crash the system nor propagate to other tasks. These tests inject the
//! faults CUDA/OpenCL programs are vulnerable to and verify the Brook
//! Auto stack contains every one of them.

use brook_auto::{Arg, BrookContext, BrookError, DeviceProfile};

#[test]
fn wild_gather_indices_never_crash_and_results_stay_deterministic() {
    // A kernel computing absurd gather coordinates from data: on a real
    // CUDA/OpenCL stack this is the memory-violation scenario that can
    // take down the driver (§2); here the texture unit clamps.
    let src = "kernel void wild(float t[][], float a<>, out float o<>) {
        o = t[a * 1.0e7][a * -3.0e6];
    }";
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    let module = ctx.compile(src).expect("compile");
    let t = ctx.stream(&[16, 16]).expect("table");
    let a = ctx.stream(&[16, 16]).expect("input");
    let o = ctx.stream(&[16, 16]).expect("out");
    let table: Vec<f32> = (0..256).map(|i| i as f32).collect();
    ctx.write(&t, &table).expect("write");
    ctx.write(&a, &vec![123.456; 256]).expect("write");
    ctx.run(
        &module,
        "wild",
        &[Arg::Stream(&t), Arg::Stream(&a), Arg::Stream(&o)],
    )
    .expect("must not fault");
    let first = ctx.read(&o).expect("read");
    // Deterministic: a second run yields the identical clamped result.
    ctx.run(
        &module,
        "wild",
        &[Arg::Stream(&t), Arg::Stream(&a), Arg::Stream(&o)],
    )
    .expect("second run");
    assert_eq!(first, ctx.read(&o).expect("read"));
    // Every value is a clamped table element, not garbage.
    for v in &first {
        assert!(
            table.contains(v),
            "non-table value {v} leaked out of a clamped gather"
        );
    }
}

#[test]
fn exhausting_the_memory_budget_fails_the_allocation_not_the_system() {
    // Rule e: a leak in one task must not destabilize the platform. With
    // a budget installed, allocation fails cleanly and existing streams
    // keep working.
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    ctx.set_memory_budget(Some(64 * 1024));
    let ok = ctx.stream(&[64, 64]).expect("16 KiB fits");
    ctx.write(&ok, &vec![1.0; 4096]).expect("write");
    let mut failures = 0;
    for _ in 0..8 {
        if ctx.stream(&[64, 64]).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "budget never enforced");
    // The healthy stream is unaffected by the failed allocations.
    assert_eq!(ctx.read(&ok).expect("read"), vec![1.0; 4096]);
}

#[test]
fn unbounded_loops_cannot_reach_the_device() {
    let src = "kernel void spin(float a<>, out float o<>) {
        float s = a;
        while (s > 0.0) { s = s + 1.0; }
        o = s;
    }";
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    let err = ctx.compile(src).expect_err("must be rejected");
    match err {
        BrookError::Certification(report) => {
            assert!(report
                .kernels
                .iter()
                .flat_map(|k| k.violations())
                .any(|f| f.rule.code() == "BA003"));
        }
        other => panic!("expected a certification error, got {other}"),
    }
}

#[test]
fn runtime_loop_guard_contains_certification_bypass() {
    // Even with certification disabled (a misconfigured build), the
    // simulator's loop budget stops a runaway kernel instead of hanging
    // the "system".
    let src = "kernel void spin(float a<>, out float o<>) {
        float s = a;
        int i;
        for (i = 0; i >= 0; i = i + 0) { s += 1.0; }
        o = s;
    }";
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    ctx.enforce_certification = false;
    let module = ctx.compile(src).expect("compile with enforcement off");
    let a = ctx.stream(&[2, 2]).expect("a");
    let o = ctx.stream(&[2, 2]).expect("o");
    ctx.write(&a, &[1.0; 4]).expect("write");
    let err = ctx
        .run(&module, "spin", &[Arg::Stream(&a), Arg::Stream(&o)])
        .expect_err("must be stopped");
    assert!(err.to_string().contains("runaway"), "unexpected error: {err}");
}

#[test]
fn nan_and_infinity_inputs_flow_through_without_faults() {
    // The numerical format canonicalizes non-finite values instead of
    // producing undefined texel patterns.
    let src = "kernel void pass(float a<>, out float o<>) { o = a * 1.0; }";
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    let module = ctx.compile(src).expect("compile");
    let a = ctx.stream(&[4]).expect("a");
    let o = ctx.stream(&[4]).expect("o");
    ctx.write(&a, &[f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.5])
        .expect("write");
    ctx.run(&module, "pass", &[Arg::Stream(&a), Arg::Stream(&o)])
        .expect("run");
    let out = ctx.read(&o).expect("read");
    assert_eq!(out[0], 0.0, "NaN must canonicalize to zero");
    assert_eq!(out[1], f32::MAX, "+inf must saturate");
    assert_eq!(out[2], f32::MIN, "-inf must saturate");
    assert_eq!(out[3], 1.5);
}

#[test]
fn oversized_streams_fail_at_allocation_with_clear_diagnostics() {
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    // 4096 exceeds the 2048 texture limit of the target (paper §6.1).
    let err = ctx.stream(&[4096, 4096]).expect_err("must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("2048"),
        "diagnostic should name the device limit: {msg}"
    );
}

#[test]
fn too_many_inputs_rejected_before_dispatch() {
    let src = "kernel void many(float a<>, float b<>, float c<>, float d<>, float e<>,
                                float f<>, float g<>, float h<>, float i<>, out float o<>) {
        o = a + b + c + d + e + f + g + h + i;
    }";
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    let err = ctx.compile(src).expect_err("9 inputs exceed 8 texture units");
    assert!(matches!(err, BrookError::Certification(_)));
}
