//! End-to-end resilience acceptance: the full eleven-application paper
//! suite completes **bit-exactly** while a deterministic [`FaultPlan`]
//! injects a device loss, a transient output corruption and a worker
//! panic mid-campaign — and every recovery step is attributed in the
//! context's resilience evidence with zero deadline misses.
//!
//! This is the integration-level counterpart of the randomized
//! fault-matrix campaign in `brook-fuzz` (`fuzz::faults`): here the
//! fault schedule is hand-picked and the assertions name the exact
//! recovery rung each fault must exercise (retry, verified failover,
//! redundant-execution repair, panic containment).

use brook_apps::all_apps;
use brook_auto::{BrookContext, FaultPlan, ResiliencePolicy, ResilienceSummary};

/// Which single fault a campaign app carries, and the rung that must
/// absorb it.
enum Fault {
    None,
    /// Transient device loss → absorbed by a backoff retry.
    TransientLoss,
    /// Persistent device loss → verified failover to the AST oracle.
    PersistentLoss,
    /// One bit-flipped output block → caught and repaired by redundant
    /// execution.
    Corruption,
    /// A worker panic mid-dispatch → contained by the unwind shield and
    /// retried.
    Panic,
}

fn fault_for(app: &str) -> Fault {
    match app {
        "black_scholes" => Fault::TransientLoss,
        "spmv" => Fault::PersistentLoss,
        "image_filter" => Fault::Corruption,
        "prefix_sum" => Fault::Panic,
        _ => Fault::None,
    }
}

fn plan_for(fault: &Fault) -> Option<FaultPlan> {
    match fault {
        Fault::None => None,
        Fault::TransientLoss => Some(FaultPlan::new().with_device_loss(0, false)),
        Fault::PersistentLoss => Some(FaultPlan::new().with_device_loss(0, true)),
        // Flip the sign bit of block 0 of the first launch's first
        // output — a single-event upset the redundant check must catch.
        Fault::Corruption => Some(FaultPlan::new().with_corruption(0, 0, 0, 0x8000_0000)),
        Fault::Panic => Some(FaultPlan::new().with_panic(0)),
    }
}

/// Campaign policy: every rung armed, a generous whole-launch deadline
/// so "no deadline misses" is a real assertion rather than vacuous.
fn campaign_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        max_retries: 6,
        deadline_ms: Some(60_000),
        attempt_timeout_ms: Some(5_000),
        redundant_check: true,
        ..ResiliencePolicy::default()
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn eleven_app_campaign_recovers_bit_exactly_with_full_attribution() {
    let policy = campaign_policy();
    let mut campaign = ResilienceSummary::default();
    let mut faulted_apps = 0;

    for app in all_apps() {
        let fault = fault_for(app.name());

        // Fault-free serial CPU oracle, same policy so the launch
        // pipeline (including the redundant check) is identical.
        let mut oracle_ctx = BrookContext::cpu();
        oracle_ctx.set_resilience(policy.clone()).expect("fresh context");
        let oracle = app
            .run_gpu(&mut oracle_ctx, app.matrix_size(), 7)
            .unwrap_or_else(|e| panic!("{}: fault-free oracle run failed: {e}", app.name()));

        // Faulted run on a fresh serial CPU context.
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(policy.clone()).expect("fresh context");
        if let Some(plan) = plan_for(&fault) {
            ctx.set_fault_plan(plan);
            faulted_apps += 1;
        }
        let out = app
            .run_gpu(&mut ctx, app.matrix_size(), 7)
            .unwrap_or_else(|e| panic!("{}: campaign run failed to recover: {e}", app.name()));

        assert_eq!(
            bits(&out),
            bits(&oracle),
            "{}: faulted output is not bit-exact with the fault-free serial CPU run",
            app.name()
        );

        // Attribution: the per-launch records must pin every injected
        // fault to the recovery rung that absorbed it.
        let report = ctx.resilience_report();
        let summary = report.summary.clone();
        assert_eq!(
            ResilienceSummary::from_records(&report.records),
            summary,
            "{}: records and summary disagree",
            app.name()
        );
        match fault {
            Fault::None => assert_eq!(summary.injected_faults, 0, "{}", app.name()),
            Fault::TransientLoss => {
                assert_eq!(summary.injected_faults, 1, "{}", app.name());
                assert!(summary.retries >= 1, "{}: loss never retried", app.name());
                assert_eq!(summary.failovers, 0, "{}", app.name());
            }
            Fault::PersistentLoss => {
                assert_eq!(summary.injected_faults, 1, "{}", app.name());
                assert_eq!(summary.failovers, 1, "{}: no failover", app.name());
                let record = report
                    .records
                    .iter()
                    .find(|r| r.failover.is_some())
                    .expect("a failover record");
                assert!(
                    record.failover.as_deref().unwrap().contains("bit-exact"),
                    "{}: failover was not verified: {:?}",
                    app.name(),
                    record.failover
                );
            }
            Fault::Corruption => {
                assert_eq!(summary.injected_faults, 1, "{}", app.name());
                assert_eq!(
                    summary.corruptions_detected,
                    1,
                    "{}: corruption slipped past the redundant check",
                    app.name()
                );
            }
            Fault::Panic => {
                assert_eq!(summary.injected_faults, 1, "{}", app.name());
                assert_eq!(summary.panics_caught, 1, "{}: panic not contained", app.name());
                assert!(summary.retries >= 1, "{}: panic never retried", app.name());
            }
        }

        // Deadline evidence: configured, honored, and recorded.
        assert_eq!(summary.deadline_misses, 0, "{}: deadline missed", app.name());
        assert!(
            report.records.iter().all(|r| r.deadline_met),
            "{}: a launch record reports a missed deadline",
            app.name()
        );
        assert!(
            summary.min_deadline_margin_ms.is_some(),
            "{}: deadline margins were not recorded",
            app.name()
        );

        for r in &report.records {
            campaign.absorb(r);
        }
    }

    // Campaign totals: all four fault kinds fired and were absorbed.
    assert_eq!(faulted_apps, 4, "the fault schedule must cover four apps");
    assert_eq!(campaign.injected_faults, 4);
    assert!(campaign.retries >= 2, "loss + panic each retry at least once");
    assert_eq!(campaign.failovers, 1);
    assert_eq!(campaign.corruptions_detected, 1);
    assert_eq!(campaign.panics_caught, 1);
    assert_eq!(campaign.deadline_misses, 0);
    assert!(campaign.launches > 0);
}
