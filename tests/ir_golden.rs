//! Golden BrookIR snapshots for representative applications.
//!
//! `BrookContext::emit_ir` renders the lowered, optimized and
//! re-certified IR in its canonical textual form; these tests pin that
//! rendering for four structurally distinct apps — a gather-driven
//! matrix kernel (sgemm), an `indexof`-driven bounded-loop kernel
//! (mandelbrot), a log-stepped scan pass (prefix_sum) and a 3×3
//! convolution (image_filter) — so any change to lowering, the pass
//! pipeline or the printer is a reviewed diff, not an accident.
//!
//! Re-bless with `BROOK_BLESS=1 cargo test --test ir_golden`.

use brook_auto::BrookContext;
use std::path::PathBuf;

fn check_golden(name: &str, source: &str) {
    let mut ctx = BrookContext::cpu();
    let module = ctx
        .compile(source)
        .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    let ir = ctx
        .emit_ir(&module)
        .unwrap_or_else(|e| panic!("{name}: emit_ir: {e}"));
    // The debug surface must be deterministic.
    assert_eq!(
        ir,
        ctx.emit_ir(&module).unwrap(),
        "{name}: emit_ir is nondeterministic"
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_ir")
        .join(format!("{name}.ir"));
    if std::env::var_os("BROOK_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &ir).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BROOK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        ir, expected,
        "{name}: IR drifted from its golden fixture; if intentional, re-bless with BROOK_BLESS=1"
    );
}

#[test]
fn sgemm_ir_matches_golden() {
    check_golden("sgemm", &brook_apps::sgemm::kernel_source(8));
}

#[test]
fn mandelbrot_ir_matches_golden() {
    check_golden("mandelbrot", &brook_apps::mandelbrot::kernel_source());
}

#[test]
fn prefix_sum_ir_matches_golden() {
    check_golden("prefix_sum", brook_apps::prefix_sum::KERNEL);
}

#[test]
fn image_filter_ir_matches_golden() {
    check_golden("image_filter", brook_apps::image_filter::KERNEL);
}

/// The golden renderings include the structural artifacts the IR layer
/// promises: recorded loop bounds and inlined straight-line math.
#[test]
fn golden_ir_carries_certification_artifacts() {
    let mut ctx = BrookContext::cpu();
    let module = ctx
        .compile(&brook_apps::mandelbrot::kernel_source())
        .expect("compile");
    let ir = ctx.emit_ir(&module).expect("emit");
    assert!(ir.contains("loop for [bound=256]"), "{ir}");
    assert!(ir.contains("indexof o"), "{ir}");
}

/// `emit_ir` refuses foreign modules like every other module-keyed API.
#[test]
fn emit_ir_rejects_foreign_modules() {
    let mut a = BrookContext::cpu();
    let b = BrookContext::cpu();
    let m = a
        .compile("kernel void f(float a<>, out float o<>) { o = a; }")
        .expect("compile");
    assert!(b.emit_ir(&m).is_err());
}
