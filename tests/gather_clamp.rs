//! Gather edge-clamp boundary semantics (paper §4, rules BA011/BA012):
//! out-of-range gather indices clamp to the nearest valid element — the
//! `CLAMP_TO_EDGE` texture behaviour that makes memory violations
//! unable to crash the system — and they must clamp to the **same**
//! element on every backend, including when power-of-two texture
//! padding or linear row wrapping would otherwise expose padding
//! texels.
//!
//! Probed indices per dimension: `-1`, `0`, `len-1`, `len`, and far out
//! of range in both directions.

use brook_auto::{registered_backends, Arg, BrookContext};
use proptest::prelude::*;

/// Runs `src` on every backend with the given streams; returns each
/// backend's output.
fn run_everywhere(
    src: &str,
    kernel: &str,
    gather: (&[usize], &[f32]),
    index_data: &[f32],
    shape: &[usize],
) -> Vec<(&'static str, Vec<f32>)> {
    let mut runs = Vec::new();
    for spec in registered_backends() {
        let mut ctx: BrookContext = (spec.make)();
        let module = ctx
            .compile(src)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", spec.name));
        let t = ctx.stream(gather.0).expect("gather stream");
        ctx.write(&t, gather.1).expect("gather write");
        let i = ctx.stream(shape).expect("index stream");
        ctx.write(&i, index_data).expect("index write");
        let o = ctx.stream(shape).expect("out stream");
        ctx.run(
            &module,
            kernel,
            &[Arg::Stream(&t), Arg::Stream(&i), Arg::Stream(&o)],
        )
        .unwrap_or_else(|e| panic!("{}: run: {e}", spec.name));
        runs.push((spec.name, ctx.read(&o).expect("read")));
    }
    runs
}

fn assert_backends_agree(runs: &[(&'static str, Vec<f32>)], what: &str) {
    let (ref_name, reference) = &runs[0];
    assert_eq!(*ref_name, "cpu");
    for (name, out) in &runs[1..] {
        for (i, (c, g)) in reference.iter().zip(out).enumerate() {
            let scale = 1.0f32.max(c.abs());
            assert!(
                (c - g).abs() <= 1e-3 * scale,
                "{what}: {name} element {i}: cpu {c} vs {g}"
            );
        }
    }
}

/// 1-D gather on a deliberately padding-exposed table: 10 elements in a
/// 16-wide power-of-two texture. Indices beyond `len-1` used to land on
/// padding texels on the GL path.
#[test]
fn rank1_boundary_indices_agree_on_padded_table() {
    let src = "kernel void g(float t[], float i<>, out float o<>) { o = t[int(i)]; }";
    let table: Vec<f32> = (0..10).map(|k| (k * k) as f32 + 1.0).collect();
    let indices = vec![-1.0, 0.0, 9.0, 10.0, 12.0, 15.0, -10000.0, 10000.0];
    let shape = [indices.len()];
    let runs = run_everywhere(src, "g", (&[10], &table), &indices, &shape);
    // CPU clamp semantics are the oracle: -1 -> 0, >=len -> len-1.
    assert_eq!(
        runs[0].1,
        vec![table[0], table[0], table[9], table[9], table[9], table[9], table[0], table[9]]
    );
    assert_backends_agree(&runs, "rank1 padded table");
}

/// 1-D gather large enough to wrap texture rows on the embedded target
/// (width 2048): linear index clamping must happen before the row/col
/// translation, or index `len` wraps to the start of the last row.
#[test]
fn rank1_boundary_indices_agree_on_row_wrapped_table() {
    let src = "kernel void g(float t[], float i<>, out float o<>) { o = t[int(i)]; }";
    let n = 3000; // wraps to a second row at width 2048
    let table: Vec<f32> = (0..n).map(|k| k as f32 * 0.25).collect();
    let indices = vec![-1.0, 0.0, 2999.0, 3000.0, 4095.0, 100000.0];
    let shape = [indices.len()];
    let runs = run_everywhere(src, "g", (&[n], &table), &indices, &shape);
    assert_eq!(
        runs[0].1,
        vec![
            table[0],
            table[0],
            table[2999],
            table[2999],
            table[2999],
            table[2999]
        ]
    );
    assert_backends_agree(&runs, "rank1 row-wrapped table");
}

/// 2-D gather on a padded grid (3x5 in a 4x8 texture): each dimension
/// clamps independently, exactly as the CPU reference does.
#[test]
fn rank2_boundary_indices_agree_on_padded_grid() {
    let src = "kernel void g(float t[][], float i<>, out float o<>) {
        float2 p = indexof(o);
        int r = int(i);
        int c = int(p.x) - 1;
        o = t[r][c];
    }";
    let (rows, cols) = (3usize, 5usize);
    let table: Vec<f32> = (0..rows * cols).map(|k| k as f32 + 1.0).collect();
    // One output row per probed row index; the column index sweeps
    // -1..cols+1 via the indexof-derived `c`.
    let row_probes = [-1.0f32, 0.0, 2.0, 3.0, 100.0, -100.0];
    for probe in row_probes {
        let shape = [cols + 2]; // c in -1 ..= cols
        let indices = vec![probe; cols + 2];
        let runs = run_everywhere(src, "g", (&[rows, cols], &table), &indices, &shape);
        let r = (probe as i64).clamp(0, rows as i64 - 1) as usize;
        let expected: Vec<f32> = (0..cols + 2)
            .map(|x| {
                let c = (x as i64 - 1).clamp(0, cols as i64 - 1) as usize;
                table[r * cols + c]
            })
            .collect();
        assert_eq!(runs[0].1, expected, "cpu oracle at row probe {probe}");
        assert_backends_agree(&runs, &format!("rank2 padded grid row {probe}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form: any table length and any index (derived from the
    /// length via `prop_flat_map`, so far-out probes scale with the
    /// table) agree across all backends.
    #[test]
    fn any_index_agrees_everywhere(
        (len, idx) in (2usize..40).prop_flat_map(|len| {
            let l = len as i64;
            (Just(len), -2 * l..2 * l)
        })
    ) {
        let src = "kernel void g(float t[], float i<>, out float o<>) { o = t[int(i)]; }";
        let table: Vec<f32> = (0..len).map(|k| (k as f32).sin()).collect();
        let indices = vec![idx as f32; 4];
        let runs = run_everywhere(src, "g", (&[len], &table), &indices, &[4]);
        let expected = table[idx.clamp(0, len as i64 - 1) as usize];
        for (name, out) in &runs {
            for v in out {
                prop_assert!(
                    (v - expected).abs() <= 1e-3 * 1.0f32.max(expected.abs()),
                    "{} idx {} len {}: expected {expected}, got {v}",
                    name, idx, len
                );
            }
        }
    }
}
