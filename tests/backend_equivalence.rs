//! Cross-crate integration: the CPU interpreter backend and the OpenGL
//! ES 2.0 simulator backend must compute identical results for the same
//! kernels — the property the paper's evaluation relies on ("the
//! correctness of the GPU implementation is retained by validating it
//! with the CPU output", §6).

use brook_auto::{Arg, BrookContext, DeviceProfile};
use proptest::prelude::*;

/// Runs a kernel over 2D streams on both backends and returns both
/// outputs.
fn run_both(src: &str, kernel: &str, inputs: &[Vec<f32>], scalars: &[f32], shape: [usize; 2]) -> (Vec<f32>, Vec<f32>) {
    let mut outs = Vec::new();
    for gpu in [false, true] {
        let mut ctx = if gpu {
            BrookContext::gles2(DeviceProfile::videocore_iv())
        } else {
            BrookContext::cpu()
        };
        let module = ctx.compile(src).expect("compile");
        let mut args = Vec::new();
        let mut streams = Vec::new();
        for data in inputs {
            let s = ctx.stream(&shape).expect("stream");
            ctx.write(&s, data).expect("write");
            streams.push(s);
        }
        let out = ctx.stream(&shape).expect("out stream");
        for s in &streams {
            args.push(Arg::Stream(s));
        }
        for v in scalars {
            args.push(Arg::Float(*v));
        }
        args.push(Arg::Stream(&out));
        ctx.run(&module, kernel, &args).expect("run");
        outs.push(ctx.read(&out).expect("read"));
    }
    (outs.remove(0), outs.remove(0))
}

fn assert_close(cpu: &[f32], gpu: &[f32], tol: f32) {
    assert_eq!(cpu.len(), gpu.len());
    for (i, (c, g)) in cpu.iter().zip(gpu).enumerate() {
        let scale = 1.0f32.max(c.abs());
        assert!((c - g).abs() <= tol * scale, "element {i}: cpu {c} vs gpu {g}");
    }
}

#[test]
fn arithmetic_kernel_matches() {
    let src = "kernel void f(float a<>, float b<>, float k, out float o<>) {
        o = (a * b + k) / (abs(a) + 1.0) - min(a, b);
    }";
    let a: Vec<f32> = (0..64).map(|i| i as f32 * 0.5 - 16.0).collect();
    let b: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
    let (c, g) = run_both(src, "f", &[a, b], &[2.5], [8, 8]);
    assert_close(&c, &g, 1e-5);
}

#[test]
fn control_flow_kernel_matches() {
    let src = "kernel void f(float a<>, out float o<>) {
        float s = 0.0;
        int i;
        for (i = 0; i < 10; i++) {
            if (s < 5.0) { s += a; } else { s -= 0.25 * a; }
        }
        o = s;
    }";
    let a: Vec<f32> = (0..64).map(|i| (i % 7) as f32 * 0.3).collect();
    let (c, g) = run_both(src, "f", &[a], &[], [8, 8]);
    assert_close(&c, &g, 1e-5);
}

#[test]
fn builtin_heavy_kernel_matches() {
    let src = "kernel void f(float a<>, float b<>, out float o<>) {
        o = sqrt(abs(a)) + exp(b * 0.1) + lerp(a, b, 0.25) + fmod(a, 3.0) + saturate(b);
    }";
    let a: Vec<f32> = (0..64).map(|i| i as f32 - 32.0).collect();
    let b: Vec<f32> = (0..64).map(|i| (i as f32) * 0.1 - 3.0).collect();
    let (c, g) = run_both(src, "f", &[a, b], &[], [8, 8]);
    assert_close(&c, &g, 1e-4);
}

#[test]
fn gather_and_indexof_kernel_matches() {
    let src = "kernel void f(float t[][], float a<>, out float o<>) {
        float2 p = indexof(o);
        o = t[p.y][p.x] * 2.0 + t[p.x][p.y] + a;
    }";
    let t: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let a: Vec<f32> = vec![0.5; 64];
    let (c, g) = run_both(src, "f", &[t, a], &[], [8, 8]);
    assert_close(&c, &g, 1e-5);
}

#[test]
fn out_of_bounds_gather_clamps_identically() {
    // Indices reach far outside the table on purpose: both backends must
    // clamp to the edge element (paper §4) and agree.
    let src = "kernel void f(float t[][], float a<>, out float o<>) {
        float2 p = indexof(o);
        o = t[p.y - 100.0][p.x + 1000.0] + t[p.y + 500.0][p.x - 77.0] + a * 0.0;
    }";
    let t: Vec<f32> = (0..64).map(|i| i as f32 * 3.0).collect();
    let a = vec![1.0; 64];
    let (c, g) = run_both(src, "f", &[t, a], &[], [8, 8]);
    assert_close(&c, &g, 1e-5);
}

#[test]
fn helper_functions_match() {
    let src = "
        float horner(float x) { return (x * 0.5 + 1.0) * x - 2.0; }
        float twice(float x) { return horner(x) + horner(-x); }
        kernel void f(float a<>, out float o<>) { o = twice(a); }";
    let a: Vec<f32> = (0..64).map(|i| i as f32 * 0.25 - 8.0).collect();
    let (c, g) = run_both(src, "f", &[a], &[], [8, 8]);
    assert_close(&c, &g, 1e-5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_data_through_polynomial_kernel(values in proptest::collection::vec(-100.0f32..100.0, 64)) {
        let src = "kernel void f(float a<>, out float o<>) { o = a * a * 0.01 - a * 0.5 + 3.0; }";
        let (c, g) = run_both(src, "f", &[values], &[], [8, 8]);
        assert_close(&c, &g, 1e-4);
    }

    #[test]
    fn random_reductions_agree(values in proptest::collection::vec(-50.0f32..50.0, 100)) {
        let src = "reduce void mx(float a<>, reduce float m<>) { m = max(m, a); }";
        let mut cpu = BrookContext::cpu();
        let mut gpu = BrookContext::gles2(DeviceProfile::videocore_iv());
        let mut results = Vec::new();
        for ctx in [&mut cpu, &mut gpu] {
            let module = ctx.compile(src).expect("compile");
            let s = ctx.stream(&[100]).expect("stream");
            ctx.write(&s, &values).expect("write");
            results.push(ctx.reduce(&module, "mx", &s).expect("reduce"));
        }
        let expect = values.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
        prop_assert_eq!(results[0], expect);
        prop_assert_eq!(results[1], expect);
    }
}
