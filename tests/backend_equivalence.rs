//! Cross-crate differential testing: every registered execution backend
//! must compute equivalent results for the same certified kernels — the
//! property the paper's evaluation relies on ("the correctness of the
//! GPU implementation is retained by validating it with the CPU
//! output", §6), generalized from the original CPU-vs-GPU pair to the
//! whole backend matrix (serial CPU, parallel CPU, GL ES 2.0 in native
//! and packed storage).
//!
//! Two layers:
//!
//! * hand-written and property-based *kernel-level* tests over
//!   [`brook_auto::registered_backends`];
//! * the *application-level* matrix: all eleven paper workloads run on
//!   every backend through [`brook_apps::run_backend_matrix`], which
//!   also asserts the serial and parallel CPU backends agree
//!   bit-for-bit.

use brook_apps::{run_backend_matrix, PaperApp};
use brook_auto::{registered_backends, Arg, BrookContext};
use proptest::prelude::*;

const SEED: u64 = 20180624;

/// Runs a kernel over streams of `shape` on every registered backend and
/// returns `(backend name, output)` per backend.
fn run_everywhere(
    src: &str,
    kernel: &str,
    inputs: &[Vec<f32>],
    scalars: &[f32],
    shape: &[usize],
) -> Vec<(&'static str, Vec<f32>)> {
    let mut outs = Vec::new();
    for spec in registered_backends() {
        let mut ctx: BrookContext = (spec.make)();
        let module = ctx
            .compile(src)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", spec.name));
        let mut streams = Vec::new();
        for data in inputs {
            let s = ctx.stream(shape).expect("stream");
            ctx.write(&s, data).expect("write");
            streams.push(s);
        }
        let out = ctx.stream(shape).expect("out stream");
        let mut args = Vec::new();
        for s in &streams {
            args.push(Arg::Stream(s));
        }
        for v in scalars {
            args.push(Arg::Float(*v));
        }
        args.push(Arg::Stream(&out));
        ctx.run(&module, kernel, &args)
            .unwrap_or_else(|e| panic!("{}: run: {e}", spec.name));
        outs.push((spec.name, ctx.read(&out).expect("read")));
    }
    outs
}

/// Asserts every backend's output is within `tol` of the first (the
/// serial CPU reference), and that the two CPU backends agree exactly.
fn assert_all_close(runs: &[(&'static str, Vec<f32>)], tol: f32) {
    let (ref_name, reference) = &runs[0];
    assert_eq!(*ref_name, "cpu", "registry must lead with the reference backend");
    for (name, out) in &runs[1..] {
        assert_eq!(reference.len(), out.len(), "{name}: length mismatch");
        for (i, (c, g)) in reference.iter().zip(out).enumerate() {
            let scale = 1.0f32.max(c.abs());
            assert!(
                (c - g).abs() <= tol * scale,
                "{name}: element {i}: cpu {c} vs {g}"
            );
        }
        if *name == "cpu-parallel" {
            let same_bits = reference.iter().zip(out).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "cpu-parallel must be bit-identical to cpu");
        }
    }
}

#[test]
fn arithmetic_kernel_matches() {
    let src = "kernel void f(float a<>, float b<>, float k, out float o<>) {
        o = (a * b + k) / (abs(a) + 1.0) - min(a, b);
    }";
    let a: Vec<f32> = (0..64).map(|i| i as f32 * 0.5 - 16.0).collect();
    let b: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
    let runs = run_everywhere(src, "f", &[a, b], &[2.5], &[8, 8]);
    assert_all_close(&runs, 1e-5);
}

#[test]
fn control_flow_kernel_matches() {
    let src = "kernel void f(float a<>, out float o<>) {
        float s = 0.0;
        int i;
        for (i = 0; i < 10; i++) {
            if (s < 5.0) { s += a; } else { s -= 0.25 * a; }
        }
        o = s;
    }";
    let a: Vec<f32> = (0..64).map(|i| (i % 7) as f32 * 0.3).collect();
    let runs = run_everywhere(src, "f", &[a], &[], &[8, 8]);
    assert_all_close(&runs, 1e-5);
}

#[test]
fn builtin_heavy_kernel_matches() {
    let src = "kernel void f(float a<>, float b<>, out float o<>) {
        o = sqrt(abs(a)) + exp(b * 0.1) + lerp(a, b, 0.25) + fmod(a, 3.0) + saturate(b);
    }";
    let a: Vec<f32> = (0..64).map(|i| i as f32 - 32.0).collect();
    let b: Vec<f32> = (0..64).map(|i| (i as f32) * 0.1 - 3.0).collect();
    let runs = run_everywhere(src, "f", &[a, b], &[], &[8, 8]);
    assert_all_close(&runs, 1e-4);
}

#[test]
fn gather_and_indexof_kernel_matches() {
    let src = "kernel void f(float t[][], float a<>, out float o<>) {
        float2 p = indexof(o);
        o = t[p.y][p.x] * 2.0 + t[p.x][p.y] + a;
    }";
    let t: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let a: Vec<f32> = vec![0.5; 64];
    let runs = run_everywhere(src, "f", &[t, a], &[], &[8, 8]);
    assert_all_close(&runs, 1e-5);
}

#[test]
fn out_of_bounds_gather_clamps_identically() {
    // Indices reach far outside the table on purpose: every backend must
    // clamp to the edge element (paper §4) and agree.
    let src = "kernel void f(float t[][], float a<>, out float o<>) {
        float2 p = indexof(o);
        o = t[p.y - 100.0][p.x + 1000.0] + t[p.y + 500.0][p.x - 77.0] + a * 0.0;
    }";
    let t: Vec<f32> = (0..64).map(|i| i as f32 * 3.0).collect();
    let a = vec![1.0; 64];
    let runs = run_everywhere(src, "f", &[t, a], &[], &[8, 8]);
    assert_all_close(&runs, 1e-5);
}

#[test]
fn helper_functions_match() {
    let src = "
        float horner(float x) { return (x * 0.5 + 1.0) * x - 2.0; }
        float twice(float x) { return horner(x) + horner(-x); }
        kernel void f(float a<>, out float o<>) { o = twice(a); }";
    let a: Vec<f32> = (0..64).map(|i| i as f32 * 0.25 - 8.0).collect();
    let runs = run_everywhere(src, "f", &[a], &[], &[8, 8]);
    assert_all_close(&runs, 1e-5);
}

#[test]
fn large_domain_exercises_the_parallel_path() {
    // 128x128 = 16384 elements, far above the parallel backend's
    // fan-out threshold; cross-backend agreement must survive chunking.
    let src = "kernel void f(float a<>, float k, out float o<>) {
        o = a * k + sin(a * 0.01);
    }";
    let n = 128 * 128;
    let a: Vec<f32> = (0..n).map(|i| (i % 977) as f32 * 0.11 - 50.0).collect();
    let runs = run_everywhere(src, "f", &[a], &[3.0], &[128, 128]);
    assert_all_close(&runs, 1e-4);
}

#[test]
fn reductions_agree_across_all_backends() {
    let src = "reduce void sum(float a<>, reduce float r<>) { r += a; }
               reduce void mx(float a<>, reduce float m<>) { m = max(m, a); }";
    let data: Vec<f32> = (0..500).map(|i| ((i * 37) % 101) as f32 * 0.25 - 12.0).collect();
    let want_max = data.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
    let want_sum: f64 = data.iter().map(|v| *v as f64).sum();
    for spec in registered_backends() {
        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let s = ctx.stream(&[500]).expect("stream");
        ctx.write(&s, &data).expect("write");
        let got_max = ctx.reduce(&module, "mx", &s).expect("max");
        assert_eq!(got_max, want_max, "{}", spec.name);
        let got_sum = ctx.reduce(&module, "sum", &s).expect("sum") as f64;
        assert!(
            (got_sum - want_sum).abs() <= want_sum.abs().max(1.0) * 1e-4,
            "{}: sum {got_sum} vs {want_sum}",
            spec.name
        );
    }
}

// ---------------------------------------------------------------------------
// The application-level backend matrix: all eleven paper workloads on
// every registered backend. One test per app so the harness runs them in
// parallel and failures name the workload directly.
// ---------------------------------------------------------------------------

fn matrix(app: &dyn PaperApp) {
    let size = app.matrix_size();
    let runs = run_backend_matrix(app, size, SEED).unwrap_or_else(|e| panic!("backend matrix failed: {e}"));
    assert_eq!(
        runs.len(),
        registered_backends().len(),
        "{}: every registered backend must run",
        app.name()
    );
}

macro_rules! app_matrix_tests {
    ($($test_name:ident => $app:expr;)*) => {$(
        #[test]
        fn $test_name() {
            matrix(&$app);
        }
    )*};
}

app_matrix_tests! {
    matrix_flops => brook_apps::flops::Flops::default();
    matrix_binomial => brook_apps::binomial::Binomial;
    matrix_black_scholes => brook_apps::black_scholes::BlackScholes;
    matrix_prefix_sum => brook_apps::prefix_sum::PrefixSum;
    matrix_spmv => brook_apps::spmv::Spmv;
    matrix_binary_search => brook_apps::binary_search::BinarySearch;
    matrix_bitonic_sort => brook_apps::bitonic_sort::BitonicSort;
    matrix_image_filter => brook_apps::image_filter::ImageFilter::default();
    matrix_mandelbrot => brook_apps::mandelbrot::Mandelbrot;
    matrix_sgemm => brook_apps::sgemm::Sgemm;
    matrix_floyd_warshall => brook_apps::floyd_warshall::FloydWarshall;
}

/// The eleven-app list itself is matrixed: `all_apps` and the per-app
/// tests above must stay in sync.
#[test]
fn matrix_covers_every_shipped_app() {
    let apps = brook_apps::all_apps();
    assert_eq!(apps.len(), 11, "the paper's suite is eleven applications");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_data_through_polynomial_kernel(values in proptest::collection::vec(-100.0f32..100.0, 64)) {
        let src = "kernel void f(float a<>, out float o<>) { o = a * a * 0.01 - a * 0.5 + 3.0; }";
        let runs = run_everywhere(src, "f", &[values], &[], &[8, 8]);
        assert_all_close(&runs, 1e-4);
    }

    #[test]
    fn random_reductions_agree(values in proptest::collection::vec(-50.0f32..50.0, 100)) {
        let src = "reduce void mx(float a<>, reduce float m<>) { m = max(m, a); }";
        let expect = values.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
        for spec in registered_backends() {
            let mut ctx = (spec.make)();
            let module = ctx.compile(src).expect("compile");
            let s = ctx.stream(&[100]).expect("stream");
            ctx.write(&s, &values).expect("write");
            let got = ctx.reduce(&module, "mx", &s).expect("reduce");
            prop_assert_eq!(got, expect, "{}", spec.name);
        }
    }
}
