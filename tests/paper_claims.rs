//! Integration tests asserting the paper's qualitative claims hold in
//! the reproduction (the quantitative record lives in EXPERIMENTS.md).
//!
//! Sizes are reduced from the figure sweeps to keep the suite fast; the
//! claims tested are the *shapes*: who wins, which way trends point,
//! and the relative behaviour of the two platforms.

use brook_apps::binomial::Binomial;
use brook_apps::bitonic_sort::BitonicSort;
use brook_apps::flops::Flops;
use brook_apps::mandelbrot::Mandelbrot;
use brook_apps::prefix_sum::PrefixSum;
use brook_apps::sgemm::Sgemm;
use brook_apps::spmv::Spmv;
use brook_apps::{measure, PlatformKind};

const SEED: u64 = 20180624;

#[test]
fn figure1_capability_ratios_match_paper_band() {
    // Paper: target 26.7x, reference 23x.
    let t = measure(&Flops::default(), PlatformKind::Target, 512, SEED).expect("target");
    let r = measure(&Flops::default(), PlatformKind::Reference, 512, SEED).expect("reference");
    assert!(
        (20.0..33.0).contains(&t.speedup),
        "target capability ratio {} off-band",
        t.speedup
    );
    assert!(
        (17.0..29.0).contains(&r.speedup),
        "reference capability ratio {} off-band",
        r.speedup
    );
    // Same order of magnitude on both systems — the premise of §6.
    let ratio = t.speedup / r.speedup;
    assert!((0.5..2.0).contains(&ratio));
}

#[test]
fn figure2_binomial_cpu_wins_but_trend_rises() {
    let small = measure(&Binomial, PlatformKind::Target, 128, SEED).expect("small");
    let large = measure(&Binomial, PlatformKind::Target, 1024, SEED).expect("large");
    assert!(
        small.speedup < 1.0,
        "paper: binomial below CPU ({})",
        small.speedup
    );
    assert!(
        large.speedup < 1.0,
        "paper: binomial below CPU ({})",
        large.speedup
    );
    assert!(
        large.speedup > small.speedup,
        "paper: speedup grows with input size"
    );
}

#[test]
fn figure2_prefix_sum_cpu_dominates() {
    let p = measure(&PrefixSum, PlatformKind::Target, 256, SEED).expect("prefix");
    assert!(
        p.speedup < 0.2,
        "paper: the accumulation loop CPU wins big ({})",
        p.speedup
    );
}

#[test]
fn figure2_spmv_transfers_dominate_but_trend_rises() {
    let small = measure(&Spmv, PlatformKind::Target, 128, SEED).expect("small");
    let large = measure(&Spmv, PlatformKind::Target, 1024, SEED).expect("large");
    assert!(small.speedup < 1.0 && large.speedup < 1.0);
    assert!(
        large.speedup > small.speedup,
        "paper: SpMV trend indicates larger sets would pay off"
    );
}

#[test]
fn figure3_bitonic_sort_is_the_headline_speedup() {
    // Paper: 135x at 256^2; the reproduction reaches the same order of
    // magnitude (tested at 128^2 for runtime, where it is already >10x).
    let p = measure(&BitonicSort, PlatformKind::Target, 128, SEED).expect("bitonic");
    assert!(p.speedup > 10.0, "bitonic speedup {} too small", p.speedup);
    // No transfers between passes: one upload, one readback.
    assert_eq!(p.gpu.readbacks, 1);
}

#[test]
fn figure3_mandelbrot_gpu_wins_and_only_output_transfers() {
    let p = measure(&Mandelbrot, PlatformKind::Target, 512, SEED).expect("mandelbrot");
    assert!(
        p.speedup > 2.0,
        "paper: mandelbrot is a GPU showcase ({})",
        p.speedup
    );
    assert_eq!(p.gpu.bytes_uploaded, 0, "paper: value does not depend on input");
}

#[test]
fn figure3_sgemm_wins_and_reference_scales_better() {
    let t256 = measure(&Sgemm, PlatformKind::Target, 256, SEED).expect("t256");
    let t512 = measure(&Sgemm, PlatformKind::Target, 512, SEED).expect("t512");
    let r512 = measure(&Sgemm, PlatformKind::Reference, 512, SEED).expect("r512");
    assert!(t512.speedup > 1.0, "paper: sgemm achieves significant speedups");
    assert!(
        t512.speedup >= t256.speedup * 0.9,
        "speedup should not collapse with size"
    );
    // Paper §6.2: the vectorized x86 Brook+ achieves better scalability
    // than the scalar Brook Auto version past 256x256.
    assert!(
        r512.speedup > t512.speedup,
        "reference ({}) should beat target ({}) at 512",
        r512.speedup,
        t512.speedup
    );
}

#[test]
fn sampled_and_full_dispatch_agree_on_counters() {
    // The figure sweeps rely on sampled dispatch extrapolation; verify it
    // matches full dispatch within a few percent on a data-independent
    // kernel.
    use brook_auto::{Arg, BrookContext, DeviceProfile, DrawMode};
    let src = "kernel void f(float a<>, out float o<>) {
        float s = 0.0;
        int i;
        for (i = 0; i < 64; i++) { s += a * 1.001; }
        o = s;
    }";
    let mut counts = Vec::new();
    for mode in [DrawMode::Full, DrawMode::Sampled { stride: 8 }] {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        ctx.set_dispatch(mode);
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[64, 64]).expect("a");
        let o = ctx.stream(&[64, 64]).expect("o");
        ctx.write(&a, &vec![1.0; 4096]).expect("write");
        ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect("run");
        counts.push(ctx.gpu_counters().alu_ops as f64);
    }
    let rel = (counts[0] - counts[1]).abs() / counts[0];
    assert!(rel < 0.05, "sampled extrapolation off by {:.1}%", rel * 100.0);
}

#[test]
fn productivity_gap_reproduced_in_direction() {
    // Paper §6.3: 70 LoC Brook vs 1500 LoC hand-written (21x). The
    // reproduction's artifacts differ in absolute size but the gap must
    // be substantial.
    let brook_loc = brook_apps::sgemm::kernel_source(1024).lines().count();
    let hand_loc = gles2_handwritten::loc();
    assert!(
        hand_loc >= brook_loc * 5,
        "productivity gap too small: {brook_loc} vs {hand_loc}"
    );
}
