//! Produces the certification artifacts of contribution (b): the Brook
//! Auto rule catalogue, a per-kernel compliance report for a conforming
//! ADAS module, and rule-by-rule rejection of the constructs CUDA/OpenCL
//! programs rely on (paper §2, §4).
//!
//! ```sh
//! cargo run --release --example certification_report
//! ```

use brook_cert::{certify_source, render_matrix, render_report, render_rule_catalogue, CertConfig};

/// A conforming ADAS module: bounded loops, static streams, one output.
const GOOD: &str = "
float luminance(float r, float g, float b) {
    return 0.2126 * r + 0.7152 * g + 0.0722 * b;
}

kernel void preprocess(float r<>, float g<>, float b<>, out float y<>) {
    y = luminance(r, g, b);
}

kernel void smooth(float img[][], out float o<>) {
    float2 p = indexof(o);
    float acc = 0.0;
    int dy;
    int dx;
    for (dy = -1; dy <= 1; dy++) {
        for (dx = -1; dx <= 1; dx++) {
            acc += img[p.y + float(dy)][p.x + float(dx)];
        }
    }
    o = acc / 9.0;
}";

/// Violations the rule engine must catch, with the rule each one trips.
const VIOLATIONS: &[(&str, &str, &str)] = &[
    (
        "unbounded while loop (BA003, §2.c static verification)",
        "kernel void f(float a<>, out float o<>) { float s = a; while (s < 100.0) { s = s * 2.0; } o = s; }",
        "BA003",
    ),
    (
        "data-dependent for bound (BA003)",
        "kernel void f(float a<>, float n, out float o<>) {
            float s = 0.0; int i;
            for (i = 0; i < int(n); i++) { s += a; }
            o = s;
        }",
        "BA003",
    ),
    (
        "recursion through helpers (BA004)",
        "float odd(float x) { return odd(x - 2.0); }
         kernel void f(float a<>, out float o<>) { o = odd(a); }",
        "BA004",
    ),
    (
        "too many outputs for the target (BA005)",
        "kernel void f(float a<>, out float o1<>, out float o2<>, out float o3<>, out float o4<>, out float o5<>) {
            o1 = a; o2 = a; o3 = a; o4 = a; o5 = a;
        }",
        "BA005",
    ),
];

fn main() {
    println!("{}", render_rule_catalogue());

    let config = CertConfig::default();
    println!("== Conforming ADAS module ==\n");
    match certify_source(GOOD, &config) {
        Ok((_, report)) => {
            print!("{}", render_report(&report));
            println!("\n{}", render_matrix(&report));
            assert!(report.is_compliant());
        }
        Err(e) => {
            eprintln!("front-end rejected the conforming module: {e}");
            std::process::exit(1);
        }
    }

    println!("\n== Constructs the subset rejects ==\n");
    for (what, src, rule) in VIOLATIONS {
        match certify_source(src, &config) {
            Ok((_, report)) => {
                let caught = report
                    .kernels
                    .iter()
                    .flat_map(|k| k.violations())
                    .any(|f| f.rule.code() == *rule);
                println!(
                    "{what}: {}",
                    if caught { "rejected as expected" } else { "MISSED" }
                );
                assert!(caught, "{what} was not caught");
            }
            Err(e) => {
                // Some violations (pointers, goto) are already parse
                // errors carrying the rule code.
                println!("{what}: rejected at parse time ({e})");
            }
        }
    }

    println!("\n== Static GPU memory plan (BA002 artifact) ==\n");
    let device = brook_auto::DeviceProfile::videocore_iv();
    let plan = brook_auto::plan_memory(
        &[
            ("camera_y", vec![480, 640]),
            ("edges", vec![480, 640]),
            ("radar_grid", vec![256, 256]),
        ],
        &device,
        true,
    )
    .expect("plan");
    print!("{}", plan.render());
    let budget = 12 * 1024 * 1024;
    println!(
        "fits the partition's {} MiB GPU budget: {}\n",
        budget / (1024 * 1024),
        plan.fits(budget)
    );
    assert!(plan.fits(budget));

    // Pointers and goto never reach the rule engine — the grammar itself
    // rejects them with the certification rule's code.
    for (what, src) in [
        (
            "pointer parameter (BA001)",
            "kernel void f(float *p, out float o<>) { o = 0.0; }",
        ),
        (
            "goto (BA007)",
            "kernel void f(float a<>, out float o<>) { goto end; }",
        ),
    ] {
        let err = brook_lang::parse(src).expect_err("must fail");
        println!(
            "{what}: rejected at parse time [{}]",
            err.first_error().map(|d| d.code.as_str()).unwrap_or("?")
        );
    }
}
