//! ADAS scenario: route planning over a road network with Floyd-Warshall
//! on the GPU.
//!
//! A navigation unit needs all-pairs travel times over a road graph.
//! The Floyd-Warshall kernel has *two* outputs (distance and
//! predecessor), which the Brook Auto compiler splits into two GPU
//! passes — the exact situation paper §6.2 describes for this benchmark.
//!
//! ```sh
//! cargo run --release --example adas_route_planning
//! ```

use brook_auto::{Arg, BrookContext, DeviceProfile};

const FW: &str = brook_apps::floyd_warshall::KERNEL;

/// A small ring road with shortcuts: 0-1-2-...-(n-1)-0 plus a few
/// expressways.
fn road_graph(n: usize) -> Vec<f32> {
    let inf = 1e6f32;
    let mut d = vec![inf; n * n];
    for i in 0..n {
        d[i * n + i] = 0.0;
        let next = (i + 1) % n;
        d[i * n + next] = 10.0; // ring segment, 10 minutes
        d[next * n + i] = 10.0;
    }
    // Expressways.
    d[n / 2] = 15.0; // row 0 expressway
    d[(n / 2) * n] = 15.0;
    d[(n / 4) * n + 3 * n / 4] = 12.0;
    d[(3 * n / 4) * n + n / 4] = 12.0;
    d
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    let module = ctx.compile(FW)?;
    println!(
        "fw_step passes per relaxation: {}",
        module.report.kernels[0].passes_required
    );

    let init_d = road_graph(n);
    let init_p: Vec<f32> = (0..n * n).map(|i| (i % n) as f32).collect();
    let mut d_ping = ctx.stream(&[n, n])?;
    let mut d_pong = ctx.stream(&[n, n])?;
    let mut p_ping = ctx.stream(&[n, n])?;
    let mut p_pong = ctx.stream(&[n, n])?;
    ctx.write(&d_ping, &init_d)?;
    ctx.write(&p_ping, &init_p)?;
    for k in 0..n {
        ctx.run(
            &module,
            "fw_step",
            &[
                Arg::Stream(&d_ping),
                Arg::Stream(&d_ping),
                Arg::Stream(&p_ping),
                Arg::Float(k as f32),
                Arg::Stream(&d_pong),
                Arg::Stream(&p_pong),
            ],
        )?;
        std::mem::swap(&mut d_ping, &mut d_pong);
        std::mem::swap(&mut p_ping, &mut p_pong);
    }
    let dist = ctx.read(&d_ping)?;
    let pred = ctx.read(&p_ping)?;

    // Travel time from depot (0) to the opposite side of the ring: the
    // expressway (15 min) beats driving the ring (n/2 * 10 min).
    let target = n / 2;
    println!("travel time 0 -> {target}: {} min", dist[target]);
    assert_eq!(dist[target], 15.0);

    // Reconstruct a route using the predecessor matrix.
    let mut route = vec![target];
    let mut cur = target;
    for _ in 0..n {
        if cur == 0 {
            break;
        }
        // predecessor of (0 -> cur): the last intermediate vertex, or the
        // column itself when the edge is direct.
        let p = pred[cur] as usize;
        if p == cur {
            route.push(0);
            break;
        }
        route.push(p);
        cur = p;
    }
    route.reverse();
    println!("route: {route:?}");
    assert!(
        route.len() <= 4,
        "expressway route should be short, got {route:?}"
    );

    let stats = ctx.gpu_counters();
    println!(
        "GPU passes: {} (2 per relaxation step: dist + pred)",
        stats.draw_calls
    );
    assert_eq!(stats.draw_calls as usize, 2 * n);
    Ok(())
}
