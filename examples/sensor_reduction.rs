//! ADAS scenario: reducing a radar intensity field to summary statistics
//! with Brook reductions (paper §5.5).
//!
//! Reductions run as multi-pass ping-pong ladders on the GPU; the actual
//! data extent is tracked pass by pass because OpenGL ES 2 only addresses
//! textures with normalized coordinates.
//!
//! ```sh
//! cargo run --release --example sensor_reduction
//! ```

use brook_auto::{BrookContext, DeviceProfile};

const REDUCERS: &str = "
reduce void total(float a<>, reduce float acc<>) { acc += a; }
reduce void peak(float a<>, reduce float m<>) { m = max(m, a); }
reduce void floor_level(float a<>, reduce float m<>) { m = min(m, a); }
";

/// Synthetic radar return field: low noise with a strong target blob.
fn radar_field(size: usize) -> Vec<f32> {
    let mut field: Vec<f32> = (0..size * size)
        .map(|i| 0.05 + 0.01 * ((i * 2654435761usize) % 97) as f32 / 97.0)
        .collect();
    // A strong reflector near the center.
    let (cy, cx) = (size / 2, size / 2 + 7);
    for dy in 0..4 {
        for dx in 0..4 {
            field[(cy + dy) * size + cx + dx] = 12.5;
        }
    }
    field
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 128;
    let field = radar_field(size);
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
    let module = ctx.compile(REDUCERS)?;
    let s = ctx.stream(&[size, size])?;
    ctx.write(&s, &field)?;

    let total = ctx.reduce(&module, "total", &s)?;
    let peak = ctx.reduce(&module, "peak", &s)?;
    let floor = ctx.reduce(&module, "floor_level", &s)?;
    let mean = total / (size * size) as f32;

    println!("radar field {size}x{size}: mean={mean:.4} peak={peak:.3} floor={floor:.4}");
    assert!((12.4..12.6).contains(&peak), "target reflector missing: {peak}");
    assert!(mean < 0.1, "mean should be near the noise floor: {mean}");
    assert!((0.05..0.07).contains(&floor), "noise floor off: {floor}");

    // Detection logic a rule-based ADAS stage might apply.
    let detection = peak > 10.0 * mean;
    println!("strong reflector detected: {detection}");
    assert!(detection);

    let counters = ctx.gpu_counters();
    println!(
        "reduction ladders used {} draw calls, {} B read back (three 1x1 results)",
        counters.draw_calls, counters.bytes_downloaded
    );
    Ok(())
}
