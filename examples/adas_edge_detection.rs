//! ADAS scenario: lane-edge detection on a synthetic road image.
//!
//! The paper's motivation is Advanced Driver Assistance Systems on
//! low-end automotive GPUs. This example builds a synthetic camera frame
//! with lane markings, runs a Sobel edge-detection kernel through the
//! certified Brook Auto pipeline on the simulated VideoCore IV, and
//! verifies the lane edges are found. Out-of-bounds accesses at the image
//! border clamp through the texture unit — no bounds branches, no faults.
//!
//! ```sh
//! cargo run --release --example adas_edge_detection
//! ```

use brook_auto::{Arg, BrookContext, DeviceProfile};

/// Sobel X kernel over a gather image, written as a Brook Auto kernel.
const SOBEL: &str = "
kernel void sobel_x(float img[][], out float edges<>) {
    float2 p = indexof(edges);
    float gx = -1.0 * img[p.y - 1.0][p.x - 1.0] + 1.0 * img[p.y - 1.0][p.x + 1.0]
             - 2.0 * img[p.y][p.x - 1.0]       + 2.0 * img[p.y][p.x + 1.0]
             - 1.0 * img[p.y + 1.0][p.x - 1.0] + 1.0 * img[p.y + 1.0][p.x + 1.0];
    edges = abs(gx);
}";

/// Synthesizes a road frame: dark asphalt with two bright lane markings.
fn road_frame(size: usize) -> Vec<f32> {
    let mut img = vec![0.15f32; size * size];
    let lanes = [size / 3, 2 * size / 3];
    for y in 0..size {
        for lane in lanes {
            // Lane markings 3 pixels wide, dashed every 16 rows.
            if (y / 16) % 2 == 0 {
                for dx in 0..3 {
                    img[y * size + lane + dx] = 0.9;
                }
            }
        }
    }
    img
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 256;
    let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());

    // Certification gate: the module compiles only because every rule
    // passes — print the verdict like a certification data package would.
    let module = ctx.compile(SOBEL)?;
    let report = &module.report;
    println!(
        "sobel_x certification: {} ({} finding(s) recorded)",
        if report.is_compliant() {
            "COMPLIANT"
        } else {
            "NOT COMPLIANT"
        },
        report.kernels[0].findings.len()
    );

    let frame = road_frame(size);
    let img = ctx.stream(&[size, size])?;
    let edges = ctx.stream(&[size, size])?;
    ctx.write(&img, &frame)?;
    ctx.run(&module, "sobel_x", &[Arg::Stream(&img), Arg::Stream(&edges)])?;
    let out = ctx.read(&edges)?;

    // Find columns with strong responses on a mid row with markings.
    let row = 8;
    let mut edge_cols: Vec<usize> = (0..size).filter(|x| out[row * size + x] > 1.0).collect();
    edge_cols.dedup_by(|a, b| a.abs_diff(*b) <= 2);
    println!("edge columns on row {row}: {edge_cols:?}");
    assert!(
        edge_cols.iter().any(|c| c.abs_diff(size / 3) <= 3),
        "left lane marking not detected"
    );
    assert!(
        edge_cols.iter().any(|c| c.abs_diff(2 * size / 3 + 3) <= 4),
        "right lane marking not detected"
    );
    println!(
        "both lane markings detected; {} fragments shaded",
        ctx.gpu_counters().fragments
    );
    Ok(())
}
