//! Quickstart: compile a Brook Auto kernel, run it on both backends and
//! check the results agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use brook_auto::{Arg, BrookContext, DeviceProfile};

const SAXPY: &str = "
kernel void saxpy(float x<>, float y<>, float alpha, out float r<>) {
    r = alpha * x + y;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated embedded GPU: a VideoCore IV-class device behind
    // OpenGL ES 2.0 — power-of-two RGBA8 textures, no float extensions.
    let mut gpu = BrookContext::gles2(DeviceProfile::videocore_iv());
    // The CPU backend provides the reference semantics.
    let mut cpu = BrookContext::cpu();

    let n = 1024;
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
    let ys: Vec<f32> = (0..n).map(|i| 100.0 - i as f32 * 0.125).collect();

    let mut results = Vec::new();
    for ctx in [&mut gpu, &mut cpu] {
        // compile() also runs the full ISO 26262 rule catalogue; a kernel
        // with an unbounded loop or too many outputs would be rejected
        // here with the violated rule's identifier.
        let module = ctx.compile(SAXPY)?;
        let x = ctx.stream(&[n])?;
        let y = ctx.stream(&[n])?;
        let r = ctx.stream(&[n])?;
        ctx.write(&x, &xs)?;
        ctx.write(&y, &ys)?;
        ctx.run(
            &module,
            "saxpy",
            &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(2.0), Arg::Stream(&r)],
        )?;
        results.push(ctx.read(&r)?);
    }

    let (gpu_out, cpu_out) = (&results[0], &results[1]);
    assert_eq!(gpu_out, cpu_out, "backends disagree");
    println!("saxpy over {n} elements: backends agree");
    println!("first values: {:?}", &gpu_out[..4]);

    let counters = gpu.gpu_counters();
    println!(
        "GPU activity: {} draw call(s), {} fragments, {} B uploaded, {} B read back",
        counters.draw_calls, counters.fragments, counters.bytes_uploaded, counters.bytes_downloaded
    );
    Ok(())
}
