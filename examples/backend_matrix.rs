//! Backend matrix: one certified kernel, every registered execution
//! backend — the paper's portability claim as a demo, plus the
//! multi-core payoff of the data-parallel CPU backend.
//!
//! ```sh
//! cargo run --release --example backend_matrix
//! ```

use brook_auto::{registered_backends, Arg, BrookContext};
use std::time::Instant;

const KERNEL: &str = "
kernel void field(float a<>, float k, out float o<>) {
    float acc = 0.0;
    int i;
    for (i = 0; i < 24; i++) {
        acc += sin(a * 0.01 + float(i)) * k;
    }
    o = acc + sqrt(abs(a));
}";

fn run_once(
    mut ctx: BrookContext,
    data: &[f32],
    shape: &[usize],
) -> Result<(Vec<f32>, f64), brook_auto::BrookError> {
    let module = ctx.compile(KERNEL)?;
    let a = ctx.stream(shape)?;
    let o = ctx.stream(shape)?;
    ctx.write(&a, data)?;
    let start = Instant::now();
    ctx.run(
        &module,
        "field",
        &[Arg::Stream(&a), Arg::Float(0.5), Arg::Stream(&o)],
    )?;
    let out = ctx.read(&o)?;
    Ok((out, start.elapsed().as_secs_f64()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = [256usize, 256];
    let n = shape[0] * shape[1];
    let data: Vec<f32> = (0..n).map(|i| (i % 4093) as f32 * 0.7 - 1200.0).collect();

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("{n}-element kernel on every registered backend ({cores} core(s) available):");
    let mut reference: Option<Vec<f32>> = None;
    let mut cpu_serial_time = None;
    for spec in registered_backends() {
        let (out, secs) = run_once((spec.make)(), &data, &shape)?;
        let checksum: f64 = out.iter().map(|v| *v as f64).sum();
        let agree = match &reference {
            None => {
                reference = Some(out.clone());
                "reference".to_string()
            }
            Some(r) => {
                let bitwise = r.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits());
                let close = r
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| (a - b).abs() <= 1e-4 * a.abs().max(1.0));
                assert!(close, "{} diverged from the CPU reference", spec.name);
                if bitwise {
                    "bit-identical".into()
                } else {
                    "within 1e-4".into()
                }
            }
        };
        let speedup = match (spec.name, cpu_serial_time) {
            ("cpu", _) => {
                cpu_serial_time = Some(secs);
                String::new()
            }
            (_, Some(base)) => format!("  ({:.1}x vs cpu)", base / secs),
            _ => String::new(),
        };
        println!(
            "  {:<14} {:>9.1} ms  checksum {checksum:>14.3}  {agree}{speedup}",
            spec.name,
            secs * 1e3
        );
    }
    println!("all {} backends agree", registered_backends().len());
    Ok(())
}
